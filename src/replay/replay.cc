/** @file Record/replay of the CPU<->GPU boundary: BRPL log container,
 *  the GpuDevice-attached Recorder, the standalone replayer and the
 *  first-divergence log differ.  See replay.h for the format and the
 *  determinism contract. */

#include "replay/replay.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "analysis/analysis.h"

namespace bifsim::replay {

namespace snap = snapshot;

void
replayError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    throw ReplayError("replay: " + msg);
}

namespace {

constexpr size_t kPage = PhysMem::kPageBytes;
constexpr size_t kHeaderBytes = 16;   ///< magic|version|count|rsvd.
constexpr size_t kEventHeaderBytes = 12;   ///< kind|length|crc.
constexpr uint64_t kMaxRam = 1ull << 31;
constexpr uint32_t kMaxCores = 1024;
constexpr uint32_t kMaxHostThreads = 4096;

bool
knownKind(uint32_t kind)
{
    return kind == kEvConfig || kind == kEvMemDelta || kind == kEvMmio ||
           kind == kEvIrq || kind == kEvFingerprint;
}

uint32_t
zeroPageCrc()
{
    static const uint32_t crc = [] {
        std::vector<uint8_t> zero(kPage, 0);
        return snap::crc32(zero.data(), zero.size());
    }();
    return crc;
}

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t
get32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

void
writeBytesFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        replayError("cannot open %s for writing", tmp.c_str());
    size_t n = bytes.empty()
                   ? 0
                   : std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool ok = n == bytes.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        replayError("short write to %s", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        replayError("cannot rename %s to %s", tmp.c_str(), path.c_str());
    }
}

/** Parses and sanity-checks the RCFG payload. */
LogConfig
parseConfig(snap::ChunkReader r)
{
    LogConfig c;
    c.ramBase = r.u64();
    c.ramBytes = r.u64();
    c.numCores = r.u32();
    c.hostThreads = r.u32();
    c.verify = r.u8();
    c.instrument = r.u8() != 0;
    c.fastPath = r.u8() != 0;
    c.cpuDbt = r.u8() != 0;
    c.fullSystem = r.u8() != 0;
    r.u8();   // reserved
    r.expectEnd();
    if (c.ramBytes == 0 || c.ramBytes > kMaxRam ||
        c.ramBytes % kPage != 0)
        r.fail(strfmt("implausible RAM size %llu",
                      static_cast<unsigned long long>(c.ramBytes)));
    if (c.numCores == 0 || c.numCores > kMaxCores)
        r.fail(strfmt("implausible shader-core count %u", c.numCores));
    if (c.hostThreads > kMaxHostThreads)
        r.fail(strfmt("implausible host-thread count %u",
                      c.hostThreads));
    if (c.verify >
        static_cast<uint8_t>(analysis::Strictness::kStrict))
        r.fail(strfmt("invalid verifier strictness %u", c.verify));
    return c;
}

} // namespace

// ---------------------------------------------------------- LogWriter

snap::ChunkWriter &
LogWriter::event(uint32_t kind)
{
    events_.push_back(Pending{kind, snap::ChunkWriter()});
    return events_.back().payload;
}

std::vector<uint8_t>
LogWriter::finish()
{
    std::vector<uint8_t> out;
    put32(out, kMagic);
    put32(out, kVersion);
    put32(out, static_cast<uint32_t>(events_.size()));
    put32(out, 0);
    for (const Pending &e : events_) {
        const std::vector<uint8_t> &p = e.payload.data();
        put32(out, e.kind);
        put32(out, static_cast<uint32_t>(p.size()));
        put32(out, snap::crc32(p.data(), p.size()));
        out.insert(out.end(), p.begin(), p.end());
    }
    events_.clear();
    return out;
}

// ---------------------------------------------------------------- Log

Log
Log::fromBytes(std::vector<uint8_t> bytes)
{
    Log log;
    log.bytes_ = std::move(bytes);
    const std::vector<uint8_t> &b = log.bytes_;
    if (b.size() < kHeaderBytes)
        replayError("log too small (%zu bytes)", b.size());
    if (get32(&b[0]) != kMagic)
        replayError("bad magic 0x%08x (not a BRPL log)", get32(&b[0]));
    uint32_t version = get32(&b[4]);
    if (version != kVersion)
        replayError("unsupported log version %u (expected %u)", version,
                    kVersion);
    uint32_t count = get32(&b[8]);
    if (static_cast<uint64_t>(count) * kEventHeaderBytes >
        b.size() - kHeaderBytes)
        replayError("event count %u exceeds log size %zu", count,
                    b.size());

    size_t pos = kHeaderBytes;
    log.events_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        if (b.size() - pos < kEventHeaderBytes)
            replayError("event %u header truncated at offset %zu", i,
                        pos);
        uint32_t kind = get32(&b[pos]);
        uint32_t length = get32(&b[pos + 4]);
        uint32_t crc = get32(&b[pos + 8]);
        pos += kEventHeaderBytes;
        if (length > b.size() - pos)
            replayError("event %u (%s) payload runs past end of log",
                        i, snap::tagName(kind).c_str());
        if (!knownKind(kind))
            replayError("event %u has unknown kind %s", i,
                        snap::tagName(kind).c_str());
        if (snap::crc32(&b[pos], length) != crc)
            replayError("event %u (%s) CRC mismatch at offset %zu", i,
                        snap::tagName(kind).c_str(), pos);
        log.events_.push_back(Extent{kind, pos, length});
        pos += length;
    }
    if (pos != b.size())
        replayError("log has %zu trailing bytes after last event",
                    b.size() - pos);
    if (log.events_.empty() || log.events_[0].kind != kEvConfig)
        replayError("log does not start with an RCFG event");
    try {
        log.cfg_ = parseConfig(log.reader(0));
    } catch (const snap::SnapshotError &e) {
        throw ReplayError(std::string("replay: RCFG: ") + e.what());
    }
    for (size_t i = 1; i < log.events_.size(); ++i) {
        if (log.events_[i].kind == kEvConfig)
            replayError("duplicate RCFG event at index %zu", i);
    }
    return log;
}

Log
Log::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        replayError("cannot open %s", path.c_str());
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (sz < 0) {
        std::fclose(f);
        replayError("cannot stat %s", path.c_str());
    }
    std::vector<uint8_t> bytes(static_cast<size_t>(sz));
    size_t n = bytes.empty()
                   ? 0
                   : std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (n != bytes.size())
        replayError("short read from %s", path.c_str());
    return fromBytes(std::move(bytes));
}

void
Log::save(const std::string &path) const
{
    writeBytesFile(path, bytes_);
}

snap::ChunkReader
Log::reader(size_t i) const
{
    const Extent &e = events_[i];
    return snap::ChunkReader(e.kind, bytes_.data() + e.offset,
                             e.length);
}

const uint8_t *
Log::payload(size_t i) const
{
    return bytes_.data() + events_[i].offset;
}

// ----------------------------------------------------------- Recorder

Recorder::Recorder(PhysMem &mem, gpu::GpuDevice &gpu, RecordInfo info)
    : mem_(mem), gpu_(gpu)
{
    if (mem_.size() % kPage != 0)
        replayError("RAM size %zu is not page-aligned", mem_.size());
    shadow_.assign(mem_.size() / kPage, zeroPageCrc());

    const gpu::GpuConfig &g = gpu_.config();
    snap::ChunkWriter &w = log_.event(kEvConfig);
    w.u64(mem_.base());
    w.u64(mem_.size());
    w.u32(g.numCores);
    w.u32(g.hostThreads);
    w.u8(static_cast<uint8_t>(g.verify));
    w.u8(g.instrument ? 1 : 0);
    w.u8(g.fastPath ? 1 : 0);
    w.u8(info.cpuDbt ? 1 : 0);
    w.u8(info.fullSystem ? 1 : 0);
    w.u8(0);

    gpu_.setRecorder(this);   // Throws unless syncSubmit, idle and
                              // all IRQs acknowledged.
    attached_ = true;

    // Fingerprints must be a pure function of the *recorded* inputs,
    // but the device may have run jobs before the recorder attached
    // (warm boot, priming enqueues): baseline its cumulative state so
    // fingerprints report deltas a fresh replay device reproduces.
    baseJobCount_ = gpu_.regState().jobCount;
    baseTotal_ = gpu_.totalKernelStats();
}

Recorder::~Recorder()
{
    if (attached_)
        gpu_.setRecorder(nullptr);
}

std::vector<uint8_t>
Recorder::finish()
{
    if (finished_)
        replayError("recorder already finished");
    if (attached_) {
        gpu_.setRecorder(nullptr);
        attached_ = false;
    }
    finished_ = true;
    return log_.finish();
}

void
Recorder::writeFile(const std::string &path)
{
    writeBytesFile(path, finish());
}

void
Recorder::onMmioWrite(uint32_t offset, uint32_t value)
{
    // Called with the device lock held: append-only, no device calls.
    snap::ChunkWriter &w = log_.event(kEvMmio);
    w.u32(offset);
    w.u32(value);
}

void
Recorder::onIrqRaise(uint32_t bits, uint32_t raw_after)
{
    // Called with the device lock held: append-only, no device calls.
    snap::ChunkWriter &w = log_.event(kEvIrq);
    w.u32(bits);
    w.u32(raw_after);
}

void
Recorder::onSubmit(uint32_t chain_va)
{
    // Called on the submitting thread with the device lock released,
    // before the chain runs: capture the RAM the CPU dirtied (the DMA
    // sources — descriptors, page tables, arguments, input buffers),
    // then the submit itself.
    captureDelta();
    snap::ChunkWriter &w = log_.event(kEvMmio);
    w.u32(static_cast<uint32_t>(gpu::kRegJsSubmit));
    w.u32(chain_va);
    chains_++;
}

void
Recorder::onChainComplete()
{
    // Resync the shadow with the GPU's own writes so they don't bleed
    // into the next CPU delta, then fingerprint the result state.
    const uint8_t *base = mem_.hostPtr(mem_.base());
    for (size_t i = 0; i < shadow_.size(); ++i)
        shadow_[i] = snap::crc32(base + i * kPage, kPage);
    emitFingerprint();
}

void
Recorder::captureDelta()
{
    const uint8_t *base = mem_.hostPtr(mem_.base());
    std::vector<uint32_t> changed;
    for (size_t i = 0; i < shadow_.size(); ++i) {
        uint32_t crc = snap::crc32(base + i * kPage, kPage);
        if (crc != shadow_[i]) {
            shadow_[i] = crc;
            changed.push_back(static_cast<uint32_t>(i));
        }
    }
    snap::ChunkWriter &w = log_.event(kEvMemDelta);
    w.u8(first_ ? 1 : 0);   // full: replayer clears RAM first, so
                            // pages equal to zero need no bytes.
    w.u32(static_cast<uint32_t>(changed.size()));
    for (uint32_t idx : changed) {
        w.u32(idx);
        w.bytes(base + static_cast<size_t>(idx) * kPage, kPage);
    }
    first_ = false;
}

uint32_t
Recorder::ramCrc() const
{
    return snap::crc32(shadow_.data(),
                       shadow_.size() * sizeof(uint32_t));
}

void
Recorder::emitFingerprint()
{
    // Only state that is a pure function of the guest inputs: the
    // guest-visible registers, whole-RAM CRC, fault details and the
    // commutatively merged kernel statistics.  TlbStats / SchedStats /
    // SystemStats vary with worker count and host behaviour and are
    // deliberately absent.
    gpu::GpuDevice::RegState rs = gpu_.regState();
    // If no job ran since attach, lastJob() is pre-recording history a
    // replay device cannot know; report the fresh-device default.
    gpu::JobResult last = rs.jobCount == baseJobCount_
                              ? gpu::JobResult{}
                              : gpu_.lastJob();
    gpu::KernelStats total = gpu_.totalKernelStats();
    total.subtract(baseTotal_);

    snap::ChunkWriter &w = log_.event(kEvFingerprint);
    w.u32(rs.jobCount - baseJobCount_);
    w.u32(rs.jsStatus);
    w.u32(rs.irqRaw);
    w.u32(rs.faultStatus);
    w.u32(rs.faultAddress);
    w.u32(ramCrc());
    w.u8(last.faulted ? 1 : 0);
    w.u8(static_cast<uint8_t>(last.fault.kind));
    w.u32(last.fault.va);
    w.str(last.fault.detail);
    w.u64(last.pagesAccessed);
    saveStats(w, last.kernel);
    saveStats(w, total);
}

// --------------------------------------------------------------- Diff

namespace {

/** Scalar prefix of an RFPR payload (kernel stats stay byte-compared). */
struct FingerprintHead
{
    uint32_t jobCount, jsStatus, irqRaw, faultStatus, faultAddress;
    uint32_t ramCrc;
    uint8_t faulted, faultKind;
    uint32_t faultVa;
    std::string faultDetail;
    uint64_t pagesAccessed;
    size_t statsOffset = 0;   ///< Where the stats bytes begin.
};

FingerprintHead
readFingerprintHead(snap::ChunkReader r)
{
    FingerprintHead h;
    h.jobCount = r.u32();
    h.jsStatus = r.u32();
    h.irqRaw = r.u32();
    h.faultStatus = r.u32();
    h.faultAddress = r.u32();
    h.ramCrc = r.u32();
    h.faulted = r.u8();
    h.faultKind = r.u8();
    h.faultVa = r.u32();
    h.faultDetail = r.str();
    h.pagesAccessed = r.u64();
    h.statsOffset = r.offset();
    return h;
}

void
appendDiff(std::string &out, const char *field, uint64_t a, uint64_t b)
{
    if (a != b) {
        if (!out.empty())
            out += ", ";
        out += strfmt("%s 0x%llx vs 0x%llx", field,
                      static_cast<unsigned long long>(a),
                      static_cast<unsigned long long>(b));
    }
}

/** Field-level rendering of two same-kind events that differ. */
std::string
renderEventDiff(const Log &a, size_t i, const Log &b, size_t j)
{
    uint32_t kind = a.kind(i);
    try {
        if (kind == kEvFingerprint) {
            FingerprintHead fa = readFingerprintHead(a.reader(i));
            FingerprintHead fb = readFingerprintHead(b.reader(j));
            std::string d;
            appendDiff(d, "jobCount", fa.jobCount, fb.jobCount);
            appendDiff(d, "jsStatus", fa.jsStatus, fb.jsStatus);
            appendDiff(d, "irqRaw", fa.irqRaw, fb.irqRaw);
            appendDiff(d, "faultStatus", fa.faultStatus,
                       fb.faultStatus);
            appendDiff(d, "faultAddress", fa.faultAddress,
                       fb.faultAddress);
            appendDiff(d, "ramCrc", fa.ramCrc, fb.ramCrc);
            appendDiff(d, "faulted", fa.faulted, fb.faulted);
            appendDiff(d, "faultKind", fa.faultKind, fb.faultKind);
            appendDiff(d, "faultVa", fa.faultVa, fb.faultVa);
            if (fa.faultDetail != fb.faultDetail) {
                if (!d.empty())
                    d += ", ";
                d += strfmt("faultDetail \"%s\" vs \"%s\"",
                            fa.faultDetail.c_str(),
                            fb.faultDetail.c_str());
            }
            appendDiff(d, "pagesAccessed", fa.pagesAccessed,
                       fb.pagesAccessed);
            if (d.empty())
                d = "kernel statistics differ";
            return "fingerprint mismatch: " + d;
        }
        if (kind == kEvMemDelta) {
            snap::ChunkReader ra = a.reader(i);
            snap::ChunkReader rb = b.reader(j);
            uint8_t fulla = ra.u8(), fullb = rb.u8();
            uint32_t na = ra.u32(), nb = rb.u32();
            if (fulla != fullb)
                return strfmt("mem delta full flag %u vs %u", fulla,
                              fullb);
            if (na != nb)
                return strfmt("mem delta page count %u vs %u", na, nb);
            for (uint32_t k = 0; k < na; ++k) {
                uint32_t pa = ra.u32(), pb = rb.u32();
                if (pa != pb)
                    return strfmt("mem delta page index %u vs %u (entry"
                                  " %u)",
                                  pa, pb, k);
                const uint8_t *da = ra.raw(kPage);
                const uint8_t *db = rb.raw(kPage);
                if (std::memcmp(da, db, kPage) != 0)
                    return strfmt("mem delta page %u content differs",
                                  pa);
            }
            return "mem delta trailing bytes differ";
        }
    } catch (const snap::SnapshotError &e) {
        return std::string("undecodable payload: ") + e.what();
    }
    return describeEvent(a, i) + " vs " + describeEvent(b, j);
}

} // namespace

std::string
describeEvent(const Log &log, size_t i)
{
    uint32_t kind = log.kind(i);
    try {
        snap::ChunkReader r = log.reader(i);
        if (kind == kEvConfig) {
            const LogConfig &c = log.config();
            return strfmt("RCFG ram=%lluKiB cores=%u threads=%u "
                          "verify=%u fast=%u dbt=%u fullsys=%u",
                          static_cast<unsigned long long>(c.ramBytes >>
                                                          10),
                          c.numCores, c.hostThreads, c.verify,
                          c.fastPath ? 1 : 0, c.cpuDbt ? 1 : 0,
                          c.fullSystem ? 1 : 0);
        }
        if (kind == kEvMemDelta) {
            uint8_t full = r.u8();
            uint32_t n = r.u32();
            return strfmt("RMEM full=%u pages=%u", full, n);
        }
        if (kind == kEvMmio) {
            uint32_t off = r.u32(), val = r.u32();
            return strfmt("RMIO [0x%03x] <= 0x%08x", off, val);
        }
        if (kind == kEvIrq) {
            uint32_t bits = r.u32(), raw = r.u32();
            return strfmt("RIRQ bits=0x%x raw=0x%x", bits, raw);
        }
        if (kind == kEvFingerprint) {
            FingerprintHead h = readFingerprintHead(std::move(r));
            return strfmt("RFPR jobs=%u js=%u irq=0x%x fault=%u@0x%08x "
                          "ramcrc=0x%08x",
                          h.jobCount, h.jsStatus, h.irqRaw,
                          h.faultStatus, h.faultAddress, h.ramCrc);
        }
    } catch (const snap::SnapshotError &e) {
        return strfmt("%s (undecodable: %s)",
                      snap::tagName(kind).c_str(), e.what());
    }
    return snap::tagName(kind);
}

std::optional<Divergence>
diffLogs(const Log &a, const Log &b, bool compare_config)
{
    size_t n = std::min(a.eventCount(), b.eventCount());
    for (size_t i = 0; i < n; ++i) {
        if (a.kind(i) != b.kind(i))
            return Divergence{
                i, strfmt("event kind %s vs %s",
                          snap::tagName(a.kind(i)).c_str(),
                          snap::tagName(b.kind(i)).c_str())};
        if (a.kind(i) == kEvConfig && !compare_config)
            continue;
        if (a.payloadSize(i) != b.payloadSize(i) ||
            std::memcmp(a.payload(i), b.payload(i),
                        a.payloadSize(i)) != 0)
            return Divergence{i, renderEventDiff(a, i, b, i)};
    }
    if (a.eventCount() != b.eventCount())
        return Divergence{
            n, strfmt("log has %zu events, other has %zu",
                      a.eventCount(), b.eventCount())};
    return std::nullopt;
}

// ------------------------------------------------------------- Replay

ReplayResult
replay(const Log &log, const ReplayOptions &opt)
{
    const LogConfig &c = log.config();
    if (opt.hostThreads > kMaxHostThreads)
        replayError("implausible host-thread count %u",
                    opt.hostThreads);

    PhysMem mem(static_cast<Addr>(c.ramBase),
                static_cast<size_t>(c.ramBytes));
    gpu::GpuConfig gcfg;
    gcfg.numCores = c.numCores;
    gcfg.hostThreads = opt.hostThreads == 0 ? 1 : opt.hostThreads;
    gcfg.instrument = c.instrument;
    gcfg.fastPath = opt.fastPath;
    gcfg.trace = opt.trace;
    gcfg.syncSubmit = true;
    gcfg.verify = static_cast<analysis::Strictness>(c.verify);
    gpu::GpuDevice dev(mem, gcfg, nullptr);

    // Validation re-records the run through the same hooks (paying the
    // per-chain RAM scans); without it, replay just applies the inputs
    // — the fast path for reproducing a workload.
    std::optional<Recorder> rec;
    if (opt.validate)
        rec.emplace(mem, dev, RecordInfo{});
    const size_t npages = mem.size() / kPage;
    size_t submits = 0;

    ReplayResult res;
    for (size_t i = 1; i < log.eventCount(); ++i) {
        try {
            switch (log.kind(i)) {
              case kEvMemDelta: {
                snap::ChunkReader r = log.reader(i);
                uint8_t full = r.u8();
                uint32_t count = r.u32();
                if (static_cast<uint64_t>(count) * (4 + kPage) >
                    r.remaining())
                    r.fail(strfmt("page count %u exceeds event size",
                                  count));
                if (full)
                    mem.clear();
                uint64_t prev = UINT64_MAX;
                for (uint32_t k = 0; k < count; ++k) {
                    uint32_t idx = r.u32();
                    if (idx >= npages)
                        r.fail(strfmt("page index %u out of range "
                                      "(%zu pages)",
                                      idx, npages));
                    if (prev != UINT64_MAX && idx <= prev)
                        r.fail(strfmt("page index %u not ascending",
                                      idx));
                    prev = idx;
                    const uint8_t *src = r.raw(kPage);
                    std::memcpy(mem.hostPtr(mem.base() +
                                            static_cast<Addr>(idx) *
                                                kPage),
                                src, kPage);
                }
                r.expectEnd();
                break;
              }
              case kEvMmio: {
                snap::ChunkReader r = log.reader(i);
                uint32_t offset = r.u32();
                uint32_t value = r.u32();
                r.expectEnd();
                if (offset == gpu::kRegJsSubmit)
                    submits++;
                dev.mmioWrite(static_cast<Addr>(offset), value);
                break;
              }
              case kEvIrq:
              case kEvFingerprint:
                // Outputs: regenerated by the attached recorder and
                // checked by the diff below.
                break;
              default:
                break;   // Unreachable: fromBytes rejects unknowns.
            }
        } catch (const snap::SnapshotError &e) {
            throw ReplayError(strfmt("replay: event %zu (%s): %s", i,
                                     snap::tagName(log.kind(i)).c_str(),
                                     e.what()));
        }
    }
    dev.waitIdle();
    res.chains = submits;
    res.lastJob = dev.lastJob();
    res.totalKernel = dev.totalKernelStats();

    if (rec) {
        Log rerecorded = Log::fromBytes(rec->finish());
        std::optional<Divergence> d = diffLogs(log, rerecorded);
        if (d) {
            res.ok = false;
            res.divergenceEvent = d->event;
            res.divergence =
                strfmt("event %zu: %s", d->event, d->what.c_str());
            return res;
        }
    }
    res.ok = true;
    return res;
}

} // namespace bifsim::replay
