#ifndef BIFSIM_REPLAY_REPLAY_H
#define BIFSIM_REPLAY_REPLAY_H

/**
 * @file
 * Record/replay of the CPU<->GPU boundary (DESIGN.md §5h).
 *
 * A Recorder attached to a GpuDevice captures everything that crosses
 * the boundary from the CPU side — MMIO register writes, the RAM pages
 * the CPU dirtied before each JS_SUBMIT (job descriptors, page tables,
 * argument tables, input buffers) — plus everything that comes back:
 * IRQ raises in causal order and a per-chain fingerprint of the
 * guest-visible result state (registers, RAM CRC, kernel statistics,
 * fault details).  The log is a versioned, CRC'd `BRPL` TLV stream
 * whose event payloads reuse the snapshot chunk serialisers, so a
 * truncated or bit-flipped log always fails with a located error.
 *
 * replay() re-executes the log against a standalone GpuDevice — no
 * Session, no guest OS, no CPU — re-records the run through the same
 * hooks, and diffs the two event streams.  Because inputs (MemDelta,
 * Mmio) are replayed verbatim and outputs (Irq, Fingerprint) are
 * regenerated, any mismatch is by construction a determinism bug, and
 * the diff names the first diverging event.
 *
 * Determinism contract: recording requires GpuConfig::syncSubmit (the
 * chain runs inline on the submitting thread, so every hook fires in
 * causal order on one thread), and fingerprints cover only state that
 * is a pure function of the guest inputs — RAM, IRQ/JS/fault
 * registers, merged kernel statistics.  Host-dependent counters
 * (TlbStats, SchedStats, SystemStats control-register traffic) are
 * deliberately excluded so a log replays bit-identically across
 * fast/legacy interpreters and any worker-thread count.  Kernels whose
 * *results* depend on atomic ordering (e.g. storing a fetched counter
 * value) are outside the contract — their RAM is order-dependent on
 * real hardware too.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "gpu/gpu.h"
#include "mem/phys_mem.h"
#include "snapshot/snapshot.h"

namespace bifsim::replay {

/** Thrown for any malformed, truncated or corrupt log, and for replay
 *  preconditions.  The message locates the failure (event + offset). */
class ReplayError : public SimError
{
  public:
    using SimError::SimError;
};

/** Throws ReplayError with a printf-style formatted message. */
[[noreturn]] void replayError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Log format constants. */
constexpr uint32_t kMagic = snapshot::makeTag("BRPL");
constexpr uint32_t kVersion = 1;

/**
 * Event kinds.  Each is a 4-character tag (like snapshot chunk tags)
 * so hexdumps and error messages are self-describing.
 *
 *  RCFG  recording configuration (always the first event)
 *  RMEM  RAM delta: pages the CPU dirtied since the previous capture
 *  RMIO  one MMIO register write (offset, value)
 *  RIRQ  one IRQ raise (bits, raw status after)
 *  RFPR  post-chain fingerprint of guest-visible result state
 */
constexpr uint32_t kEvConfig = snapshot::makeTag("RCFG");
constexpr uint32_t kEvMemDelta = snapshot::makeTag("RMEM");
constexpr uint32_t kEvMmio = snapshot::makeTag("RMIO");
constexpr uint32_t kEvIrq = snapshot::makeTag("RIRQ");
constexpr uint32_t kEvFingerprint = snapshot::makeTag("RFPR");

/** The RCFG payload: what the recording world looked like.  Execution-
 *  relevant fields (RAM geometry, core count, verifier strictness,
 *  instrumentation) bind the replayer; the rest is informational so
 *  tier/worker crossings can be reported. */
struct LogConfig
{
    uint64_t ramBase = 0;
    uint64_t ramBytes = 0;
    uint32_t numCores = 0;
    uint32_t hostThreads = 0;   ///< Informational: recording pool size.
    uint8_t verify = 0;         ///< analysis::Strictness.
    bool instrument = true;
    bool fastPath = true;       ///< Informational: recording tier.
    bool cpuDbt = false;        ///< Informational: CPU tier (FullSystem).
    bool fullSystem = false;    ///< Informational: submission mode.
};

/** Appends events to a BRPL log under construction. */
class LogWriter
{
  public:
    /** Opens a new event of @p kind.  The returned ChunkWriter stays
     *  valid until the next event() / finish() call. */
    snapshot::ChunkWriter &event(uint32_t kind);

    /** Seals the log and returns the serialised bytes. */
    std::vector<uint8_t> finish();

    size_t eventCount() const { return events_.size(); }

  private:
    struct Pending
    {
        uint32_t kind;
        snapshot::ChunkWriter payload;
    };

    std::vector<Pending> events_;
};

/**
 * A fully validated BRPL log.  Construction checks the complete
 * structure — magic, version, event bounds, per-event CRC32, known
 * kinds, leading RCFG — before any payload becomes visible; per-field
 * reads through reader() are bounds-checked on top of that.
 */
class Log
{
  public:
    /** Parses and validates @p bytes.  Throws ReplayError. */
    static Log fromBytes(std::vector<uint8_t> bytes);

    /** Reads and validates the log at @p path.  Throws ReplayError. */
    static Log load(const std::string &path);

    /** Writes the log to @p path (atomic: tmp+rename). */
    void save(const std::string &path) const;

    size_t eventCount() const { return events_.size(); }

    /** Kind tag of event @p i. */
    uint32_t kind(size_t i) const { return events_[i].kind; }

    /** Bounds-checked cursor over event @p i's payload. */
    snapshot::ChunkReader reader(size_t i) const;

    /** Raw payload bytes of event @p i (for byte-level diffing). */
    const uint8_t *payload(size_t i) const;
    size_t payloadSize(size_t i) const { return events_[i].length; }

    /** The parsed+validated RCFG event. */
    const LogConfig &config() const { return cfg_; }

    size_t sizeBytes() const { return bytes_.size(); }
    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    Log() = default;

    struct Extent
    {
        uint32_t kind;
        size_t offset;
        size_t length;
    };

    std::vector<uint8_t> bytes_;
    std::vector<Extent> events_;
    LogConfig cfg_;
};

/** Informational recording context the device cannot see itself. */
struct RecordInfo
{
    bool cpuDbt = false;
    bool fullSystem = false;
};

/**
 * Captures the CPU<->GPU boundary of one GpuDevice into a BRPL log.
 *
 * Attaching requires GpuConfig::syncSubmit and an idle device with all
 * IRQs acknowledged; the Recorder hooks stay attached until finish()
 * (or destruction).  The device may already have run jobs (warm boot,
 * priming enqueues): cumulative state — JOB_COUNT, merged kernel
 * statistics, the last job result — is baselined at attach so
 * fingerprints carry only what happened *during* the recording, which
 * is exactly what a fresh replay device reproduces.  RAM
 * dirtied by the CPU is discovered by a per-page CRC shadow diffed at
 * each JS_SUBMIT; the first delta is emitted against a zeroed shadow
 * with the `full` flag set (replayers clear RAM first), which makes
 * logs self-contained even when recording starts on a warm-booted /
 * snapshot-restored session.
 *
 * Threading: all hooks fire on the submitting thread (guaranteed by
 * the syncSubmit requirement); construction, finish() and destruction
 * belong to that same simulation thread.  Single-owner by contract,
 * so the Recorder carries no sim::Mutex/GUARDED_BY (DESIGN.md §5i) —
 * note the GPU-side hook *dispatch* does run under the device lock_:
 * onMmioWrite/onIrqRaise fire inside GpuDevice's critical sections,
 * while onSubmit/onChainComplete fire outside them (gpu.cc), all on
 * the one submitting thread.
 */
class Recorder
{
  public:
    Recorder(PhysMem &mem, gpu::GpuDevice &gpu, RecordInfo info = {});
    ~Recorder();

    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    /** Detaches from the device and returns the sealed log bytes. */
    std::vector<uint8_t> finish();

    /** finish() + atomic write to @p path. */
    void writeFile(const std::string &path);

    /** Chains (JS_SUBMIT writes) recorded so far. */
    size_t chains() const { return chains_; }

    // GpuDevice hooks — called by the device only.
    void onMmioWrite(uint32_t offset, uint32_t value);
    void onIrqRaise(uint32_t bits, uint32_t raw_after);
    void onSubmit(uint32_t chain_va);
    void onChainComplete();

  private:
    PhysMem &mem_;
    gpu::GpuDevice &gpu_;
    LogWriter log_;
    std::vector<uint32_t> shadow_;   ///< Per-page CRC32 of last capture.
    bool first_ = true;              ///< Next delta carries `full`.
    bool attached_ = false;
    bool finished_ = false;
    size_t chains_ = 0;
    uint32_t baseJobCount_ = 0;      ///< JOB_COUNT at attach.
    gpu::KernelStats baseTotal_;     ///< Cumulative stats at attach.

    void captureDelta();
    void emitFingerprint();
    uint32_t ramCrc() const;
};

/** First point where two logs disagree. */
struct Divergence
{
    size_t event = 0;       ///< Index into the *reference* log.
    std::string what;       ///< Human-readable field-level diff.
};

/**
 * Compares two logs event by event.  RCFG events are compared only
 * when @p compare_config (they legitimately differ across tiers and
 * between a recording and its replay).  Returns the first divergence,
 * or nullopt if the logs agree.
 */
std::optional<Divergence> diffLogs(const Log &a, const Log &b,
                                   bool compare_config = false);

/** Renders event @p i of @p log for error messages / `replaycap info`. */
std::string describeEvent(const Log &log, size_t i);

/** Host-side replay knobs.  Everything execution-relevant comes from
 *  the log; these choose the simulation strategy, which the
 *  determinism contract says must not change the outcome. */
struct ReplayOptions
{
    unsigned hostThreads = 1;
    bool fastPath = true;
    bool trace = false;
    bool validate = true;   ///< Re-record and diff against the source;
                            ///< false applies the inputs only (no
                            ///< per-chain RAM scans — the fast path
                            ///< for reproducing a workload).
};

/** Outcome of one replay. */
struct ReplayResult
{
    bool ok = false;
    size_t chains = 0;
    size_t divergenceEvent = 0;   ///< Valid when !ok.
    std::string divergence;       ///< Empty when ok.
    gpu::JobResult lastJob;       ///< Final device result state.
    gpu::KernelStats totalKernel;
};

/**
 * Replays @p log into a standalone GpuDevice (syncSubmit, no CPU or
 * guest OS).  Input events are applied verbatim; output events are
 * regenerated by a fresh Recorder and, when @p opt.validate, diffed
 * against the source — the first mismatching event is reported in
 * ReplayResult::divergence.  Throws ReplayError on malformed payloads
 * or implausible configuration; divergence is a result, not a throw.
 */
ReplayResult replay(const Log &log, const ReplayOptions &opt = {});

} // namespace bifsim::replay

#endif // BIFSIM_REPLAY_REPLAY_H
