#ifndef BIFSIM_LINT_SIMLINT_H
#define BIFSIM_LINT_SIMLINT_H

/**
 * @file
 * simlint: repo-shape invariant checks (DESIGN.md §5i).
 *
 * The clang thread-safety job proves lock discipline; this library
 * checks the *textual* invariants the type system can't reach — the
 * kind that corrupt silently when violated:
 *
 *  1. TLV tag uniqueness: every `constexpr uint32_t k... = makeTag`
 *     4CC across the BSNP/BRPL serializers is claimed exactly once.
 *  2. DBT X-macro parity: the `DBT_OPS(X)` op list and the
 *     `HANDLER(Op)` bodies in src/cpu/dbt.cc are the same set.
 *  3. Counter registry: every counter name `appendCounters` emits is
 *     unique, matches `prefix.lower_snake`, and is documented in BOTH
 *     docs/COUNTERS.md (the per-struct reference) and docs/METRICS.md
 *     (the exported-series view the metrics registry serves) — and
 *     neither doc names a counter that doesn't exist.
 *  4. Mutex coverage: no raw std mutex/condition-variable member in
 *     src/ outside thread_annotations.h, and every `sim::Mutex`
 *     member is referenced by at least one thread-safety annotation
 *     in its file.
 *
 * The checks are deliberately lexical (line-oriented scans, no real
 * C++ parse): the guarded patterns are themselves lexical idioms the
 * repo enforces by convention, and a checker that needs a compiler to
 * run can't be the thing CI runs before the compiler.  Fixture-driven
 * tests (tests/test_simlint.cc) pin the exact file:line each seeded
 * violation is reported at.
 *
 * Used by the `simlint` CLI (examples/simlint.cpp) and CI.
 */

#include <string>
#include <vector>

namespace bifsim::lint {

/** One finding.  `file` is relative to Options::root. */
struct Diag
{
    std::string file;
    int line = 0;           ///< 1-based; 0 = whole-file/cross-file.
    std::string check;      ///< "tlv-tag", "dbt-parity", "counters",
                            ///< "mutex-coverage".
    std::string message;
};

/** Where to look.  Defaults mirror the repository layout; tests point
 *  `root` at seeded-violation fixture trees with the same shape. */
struct Options
{
    std::string root = ".";
    std::string srcDir = "src";
    std::string dbtFile = "src/cpu/dbt.cc";
    std::string statsFile = "src/instrument/stats.cc";
    std::string countersDoc = "docs/COUNTERS.md";
    std::string metricsDoc = "docs/METRICS.md";
};

/** @name Individual checks (each returns its findings, empty = clean).
 *  A missing input file is itself a finding — a renamed dbt.cc must
 *  fail the check, not silently skip it. */
///@{
std::vector<Diag> checkTagUniqueness(const Options &opts);
std::vector<Diag> checkDbtParity(const Options &opts);
std::vector<Diag> checkCounterRegistry(const Options &opts);
std::vector<Diag> checkMutexCoverage(const Options &opts);
///@}

/** Runs every check; findings in check order, file/line order within
 *  a check. */
std::vector<Diag> runAllChecks(const Options &opts);

/** "file:line: [check] message" (line omitted when 0). */
std::string renderDiag(const Diag &d);

} // namespace bifsim::lint

#endif // BIFSIM_LINT_SIMLINT_H
