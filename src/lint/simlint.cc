#include "lint/simlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace bifsim::lint {

namespace fs = std::filesystem;

namespace {

// The needles this linter scans for also appear in its own source —
// as the code below.  Juxtaposed string literals keep the scanned
// pattern from ever appearing verbatim in this file, so simlint does
// not report itself.
const std::string kTagNeedle = std::string("make") + "Tag(\"";
const std::string kHandlerNeedle = std::string("HAND") + "LER(";
const std::string kDbtOpsNeedle = std::string("#define DBT") + "_OPS(X)";
const std::string kCounterNeedle = std::string("out.push_") + "back({\"";
const std::string kStdMutex = std::string("std::") + "mutex";
const std::string kStdCondVar = std::string("std::") + "condition_variable";
const std::string kStdSharedMutex = std::string("std::") + "shared_mutex";
const std::string kSimMutex = std::string("sim::") + "Mutex";
const std::string kConstexprU32 = "constexpr uint32_t";

/** Annotation macros that count as "references" a sim::Mutex member
 *  must have (check 4). */
const char *const kAnnotationMacros[] = {
    "GUARDED_BY(",    "PT_GUARDED_BY(", "REQUIRES(", "REQUIRES_SHARED(",
    "ACQUIRE(",       "ACQUIRE_SHARED(", "RELEASE(",  "RELEASE_SHARED(",
    "TRY_ACQUIRE(",   "EXCLUDES(",       "ACQUIRED_BEFORE(",
    "ACQUIRED_AFTER(", "ASSERT_CAPABILITY(", "RETURN_CAPABILITY(",
};

bool
readLines(const fs::path &p, std::vector<std::string> &out)
{
    std::ifstream in(p);
    if (!in)
        return false;
    out.clear();
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return true;
}

/** Repo-relative rendering of @p p for diagnostics. */
std::string
rel(const Options &opts, const fs::path &p)
{
    std::error_code ec;
    fs::path r = fs::relative(p, opts.root, ec);
    return ec ? p.generic_string() : r.generic_string();
}

/** All .h/.cc files under root/srcDir, sorted for stable output. */
std::vector<fs::path>
sourceFiles(const Options &opts)
{
    std::vector<fs::path> files;
    fs::path dir = fs::path(opts.root) / opts.srcDir;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file())
            continue;
        fs::path ext = it->path().extension();
        if (ext == ".h" || ext == ".cc")
            files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

Diag
missingFile(const std::string &relPath, const std::string &check)
{
    return Diag{relPath, 0, check,
                "required input file is missing (moved? update "
                "lint::Options and this check)"};
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

// ------------------------------------------------------- check 1: tags

std::vector<Diag>
checkTagUniqueness(const Options &opts)
{
    // A tag *definition* is `constexpr uint32_t kName = [ns::]makeTag
    // ("XXXX")`.  Read-side uses (e.g. parse helpers re-deriving
    // "HDR ") are legal and ignored; two definitions claiming one 4CC
    // silently alias chunk types across serializers.
    std::vector<Diag> diags;
    struct Site
    {
        std::string file;
        int line;
    };
    std::map<std::string, std::vector<Site>> sites;
    std::vector<std::string> lines;
    for (const fs::path &p : sourceFiles(opts)) {
        if (!readLines(p, lines))
            continue;
        for (size_t i = 0; i < lines.size(); ++i) {
            const std::string &l = lines[i];
            if (l.find(kConstexprU32) == std::string::npos)
                continue;
            size_t pos = l.find(kTagNeedle);
            if (pos == std::string::npos)
                continue;
            size_t start = pos + kTagNeedle.size();
            size_t endq = l.find('"', start);
            if (endq == std::string::npos || endq - start != 4)
                continue;
            sites[l.substr(start, 4)].push_back(
                {rel(opts, p), static_cast<int>(i + 1)});
        }
    }
    if (sites.empty()) {
        diags.push_back(Diag{opts.srcDir, 0, "tlv-tag",
                             "no TLV tag definitions found at all — "
                             "the scan pattern no longer matches the "
                             "code"});
        return diags;
    }
    for (const auto &[tag, where] : sites) {
        if (where.size() <= 1)
            continue;
        for (size_t i = 1; i < where.size(); ++i) {
            std::ostringstream msg;
            msg << "TLV tag \"" << tag << "\" is already defined at "
                << where[0].file << ":" << where[0].line
                << "; duplicate definitions alias chunk types across "
                   "serializers";
            diags.push_back(Diag{where[i].file, where[i].line,
                                 "tlv-tag", msg.str()});
        }
    }
    return diags;
}

// ------------------------------------------------- check 2: dbt parity

std::vector<Diag>
checkDbtParity(const Options &opts)
{
    std::vector<Diag> diags;
    fs::path p = fs::path(opts.root) / opts.dbtFile;
    std::vector<std::string> lines;
    if (!readLines(p, lines)) {
        diags.push_back(missingFile(opts.dbtFile, "dbt-parity"));
        return diags;
    }

    // The op list: X(Name) entries on the DBT_OPS macro definition
    // and its backslash-continuation lines.
    std::map<std::string, int> ops;        // name -> line
    std::map<std::string, int> handlers;   // name -> first line
    std::map<std::string, int> handlerCount;
    bool inOpsMacro = false;
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &l = lines[i];
        if (!inOpsMacro && l.find(kDbtOpsNeedle) != std::string::npos)
            inOpsMacro = true;
        if (inOpsMacro) {
            for (size_t pos = 0; (pos = l.find("X(", pos)) !=
                                 std::string::npos;) {
                // Require X to be a standalone macro name, not the
                // tail of an identifier (e.g. "IDX(").
                if (pos > 0 && isIdentChar(l[pos - 1])) {
                    pos += 2;
                    continue;
                }
                size_t start = pos + 2;
                size_t close = l.find(')', start);
                if (close == std::string::npos)
                    break;
                std::string name = l.substr(start, close - start);
                if (!name.empty() &&
                    std::all_of(name.begin(), name.end(), isIdentChar) &&
                    !ops.count(name))
                    ops[name] = static_cast<int>(i + 1);
                pos = close;
            }
            if (l.empty() || l.back() != '\\')
                inOpsMacro = false;
            continue;
        }
        // Handler bodies: HANDLER(Name) outside any #define (the two
        // dispatch-strategy definitions of HANDLER itself use a
        // lowercase metavariable, but exclude directives outright).
        std::string trimmed = l;
        size_t first = trimmed.find_first_not_of(" \t");
        if (first != std::string::npos && trimmed[first] == '#')
            continue;
        for (size_t pos = 0; (pos = l.find(kHandlerNeedle, pos)) !=
                             std::string::npos;) {
            if (pos > 0 && isIdentChar(l[pos - 1])) {
                pos += kHandlerNeedle.size();
                continue;
            }
            size_t start = pos + kHandlerNeedle.size();
            size_t close = l.find(')', start);
            if (close == std::string::npos)
                break;
            std::string name = l.substr(start, close - start);
            if (!name.empty() &&
                std::all_of(name.begin(), name.end(), isIdentChar)) {
                if (!handlers.count(name))
                    handlers[name] = static_cast<int>(i + 1);
                handlerCount[name]++;
            }
            pos = close;
        }
    }

    if (ops.empty()) {
        diags.push_back(Diag{opts.dbtFile, 0, "dbt-parity",
                             "no DBT_OPS(X) op list found — the scan "
                             "pattern no longer matches the code"});
        return diags;
    }
    for (const auto &[name, line] : ops) {
        if (!handlers.count(name)) {
            diags.push_back(
                Diag{opts.dbtFile, line, "dbt-parity",
                     "op " + name + " is in the DBT_OPS list but has "
                     "no HANDLER(" + name + ") body — a hole in the "
                     "computed-goto dispatch table"});
        } else if (handlerCount[name] > 1) {
            diags.push_back(
                Diag{opts.dbtFile, handlers[name], "dbt-parity",
                     "op " + name + " has " +
                     std::to_string(handlerCount[name]) +
                     " HANDLER bodies; exactly one is required"});
        }
    }
    for (const auto &[name, line] : handlers) {
        if (!ops.count(name)) {
            diags.push_back(
                Diag{opts.dbtFile, line, "dbt-parity",
                     "HANDLER(" + name + ") has no matching entry in "
                     "the DBT_OPS list — dead code the dispatch table "
                     "can never reach"});
        }
    }
    return diags;
}

// --------------------------------------------------- check 3: counters

std::vector<Diag>
checkCounterRegistry(const Options &opts)
{
    std::vector<Diag> diags;
    fs::path statsPath = fs::path(opts.root) / opts.statsFile;
    std::vector<std::string> lines;
    if (!readLines(statsPath, lines)) {
        diags.push_back(missingFile(opts.statsFile, "counters"));
        return diags;
    }

    auto validName = [](const std::string &n) {
        size_t dot = n.find('.');
        if (dot == std::string::npos || dot == 0 || dot + 1 >= n.size())
            return false;
        static const std::set<std::string> prefixes = {
            "kernel", "tlb", "sys", "sched", "cpu", "fleet",
            "metrics"};
        if (!prefixes.count(n.substr(0, dot)))
            return false;
        for (size_t i = dot + 1; i < n.size(); ++i) {
            char c = n[i];
            if (!(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) ||
                  c == '_'))
                return false;
        }
        return true;
    };

    std::map<std::string, int> emitted;   // name -> first line
    for (size_t i = 0; i < lines.size(); ++i) {
        const std::string &l = lines[i];
        size_t pos = l.find(kCounterNeedle);
        if (pos == std::string::npos)
            continue;
        size_t start = pos + kCounterNeedle.size();
        size_t endq = l.find('"', start);
        if (endq == std::string::npos)
            continue;
        std::string name = l.substr(start, endq - start);
        int lineNo = static_cast<int>(i + 1);
        if (!validName(name)) {
            diags.push_back(
                Diag{opts.statsFile, lineNo, "counters",
                     "counter \"" + name + "\" does not match the "
                     "prefix.lower_snake grammar (prefixes: kernel, "
                     "tlb, sys, sched, cpu, fleet, metrics)"});
            continue;
        }
        auto [it, fresh] = emitted.emplace(name, lineNo);
        if (!fresh) {
            diags.push_back(
                Diag{opts.statsFile, lineNo, "counters",
                     "counter \"" + name + "\" is already emitted at "
                     "line " + std::to_string(it->second) +
                     "; duplicate names collide in trace exports"});
        }
    }
    if (emitted.empty()) {
        diags.push_back(Diag{opts.statsFile, 0, "counters",
                             "no emitted counters found — the scan "
                             "pattern no longer matches the code"});
        return diags;
    }

    // Every emitted counter must be documented TWICE: in the
    // per-struct reference (docs/COUNTERS.md) and in the
    // exported-series view the metrics registry serves
    // (docs/METRICS.md) — an undocumented series is invisible to
    // anyone reading the HUD or a sweep diff.  Documented names are
    // backticked tokens shaped like counter names.
    std::vector<std::map<std::string, int>> documented;
    const std::string docs[] = {opts.countersDoc, opts.metricsDoc};
    for (const std::string &doc : docs) {
        std::vector<std::string> docLines;
        if (!readLines(fs::path(opts.root) / doc, docLines)) {
            diags.push_back(missingFile(doc, "counters"));
            return diags;
        }
        std::map<std::string, int> names;
        for (size_t i = 0; i < docLines.size(); ++i) {
            const std::string &l = docLines[i];
            for (size_t pos = 0; (pos = l.find('`', pos)) !=
                                 std::string::npos;) {
                size_t endq = l.find('`', pos + 1);
                if (endq == std::string::npos)
                    break;
                std::string name = l.substr(pos + 1, endq - pos - 1);
                if (validName(name) && !names.count(name))
                    names[name] = static_cast<int>(i + 1);
                pos = endq + 1;
            }
        }
        documented.push_back(std::move(names));
    }
    for (const auto &[name, line] : emitted) {
        for (size_t d = 0; d < documented.size(); ++d) {
            if (!documented[d].count(name))
                diags.push_back(
                    Diag{opts.statsFile, line, "counters",
                         "counter \"" + name +
                         "\" is not documented in " + docs[d]});
        }
    }
    for (size_t d = 0; d < documented.size(); ++d) {
        for (const auto &[name, line] : documented[d]) {
            if (!emitted.count(name))
                diags.push_back(
                    Diag{docs[d], line, "counters",
                         "documented counter \"" + name + "\" is not "
                         "emitted by any appendCounters overload in " +
                         opts.statsFile});
        }
    }
    return diags;
}

// --------------------------------------------- check 4: mutex coverage

std::vector<Diag>
checkMutexCoverage(const Options &opts)
{
    std::vector<Diag> diags;
    std::vector<std::string> lines;
    for (const fs::path &p : sourceFiles(opts)) {
        if (p.filename() == "thread_annotations.h")
            continue;   // The one place the std types may appear.
        if (!readLines(p, lines))
            continue;
        std::string file = rel(opts, p);

        // (a) Raw standard sync primitives are banned outright in
        // src/ — locks the analysis can't see are contract holes.
        for (size_t i = 0; i < lines.size(); ++i) {
            const std::string &l = lines[i];
            for (const std::string *needle :
                 {&kStdMutex, &kStdCondVar, &kStdSharedMutex}) {
                size_t pos = l.find(*needle);
                if (pos == std::string::npos)
                    continue;
                // Require a non-identifier follower so a longer
                // identifier sharing a banned prefix is not flagged.
                size_t after = pos + needle->size();
                if (after < l.size() && isIdentChar(l[after]))
                    continue;
                diags.push_back(
                    Diag{file, static_cast<int>(i + 1),
                         "mutex-coverage",
                         "raw " + *needle + " in src/ — use the "
                         "annotated sim:: wrappers from "
                         "common/thread_annotations.h so the "
                         "thread-safety analysis sees every lock"});
                break;
            }
        }

        // (b) Every sim::Mutex member must be referenced by at least
        // one annotation in the same file — an unreferenced lock
        // guards nothing the analysis knows about.
        struct Member
        {
            std::string name;
            int line;
        };
        std::vector<Member> mutexes;
        for (size_t i = 0; i < lines.size(); ++i) {
            const std::string &l = lines[i];
            size_t pos = l.find(kSimMutex);
            if (pos == std::string::npos)
                continue;
            size_t start = pos + kSimMutex.size();
            while (start < l.size() && l[start] == ' ')
                ++start;
            size_t end = start;
            while (end < l.size() && isIdentChar(l[end]))
                ++end;
            if (end == start)
                continue;   // A mention, not a declaration.
            // Declarations end in ';' (data member) — constructor
            // parameters (e.g. "sim::Mutex &m") and locals are not
            // members; the repo convention is members only.
            if (l.find(';', end) == std::string::npos)
                continue;
            if (start > pos + kSimMutex.size() &&
                (l[start] == '&' || l[start] == '*'))
                continue;
            mutexes.push_back(
                {l.substr(start, end - start), static_cast<int>(i + 1)});
        }
        if (mutexes.empty())
            continue;
        std::string text;
        for (const std::string &l : lines) {
            text += l;
            text += '\n';
        }
        for (const Member &m : mutexes) {
            bool referenced = false;
            for (const char *macro : kAnnotationMacros) {
                for (size_t pos = 0; (pos = text.find(macro, pos)) !=
                                     std::string::npos;) {
                    size_t close = text.find(')', pos);
                    if (close == std::string::npos)
                        break;
                    std::string args =
                        text.substr(pos, close - pos + 1);
                    size_t at = args.find(m.name);
                    // Whole-identifier match inside the macro args.
                    while (at != std::string::npos) {
                        bool lok = at == 0 || !isIdentChar(args[at - 1]);
                        bool rok = at + m.name.size() >= args.size() ||
                                   !isIdentChar(args[at + m.name.size()]);
                        if (lok && rok) {
                            referenced = true;
                            break;
                        }
                        at = args.find(m.name, at + 1);
                    }
                    if (referenced)
                        break;
                    pos = close;
                }
                if (referenced)
                    break;
            }
            if (!referenced) {
                diags.push_back(
                    Diag{file, m.line, "mutex-coverage",
                         "sim::Mutex member " + m.name + " is not "
                         "referenced by any thread-safety annotation "
                         "(GUARDED_BY/REQUIRES/EXCLUDES/...) in this "
                         "file — declare what it guards, or document "
                         "and remove it"});
            }
        }
    }
    return diags;
}

// ----------------------------------------------------------- top level

std::vector<Diag>
runAllChecks(const Options &opts)
{
    std::vector<Diag> all;
    for (auto check : {checkTagUniqueness, checkDbtParity,
                       checkCounterRegistry, checkMutexCoverage}) {
        std::vector<Diag> d = check(opts);
        all.insert(all.end(), d.begin(), d.end());
    }
    return all;
}

std::string
renderDiag(const Diag &d)
{
    std::ostringstream os;
    os << d.file;
    if (d.line > 0)
        os << ":" << d.line;
    os << ": [" << d.check << "] " << d.message;
    return os.str();
}

} // namespace bifsim::lint
