#ifndef BIFSIM_FLEET_WARM_IMAGE_H
#define BIFSIM_FLEET_WARM_IMAGE_H

/**
 * @file
 * Warm-boot image builder for the fleet (DESIGN.md §5j).
 *
 * The fleet serves jobs against a *prepared* session: guest OS booted,
 * kernels compiled and loaded, working buffers allocated.  This module
 * cold-boots that session once and seals it into an ordinary BSNP
 * snapshot; `simd`, the benchmarks and the tests all spawn their
 * hundreds of tenants from the one image instead of paying the boot
 * per session.
 *
 * The standard image carries the six SGEMM variants of Fig. 15 plus
 * three n*n float buffers (registry indices 0 = A, 1 = B, 2 = C), so a
 * job request is just {kernel index, writes into A/B, launch dims,
 * readback of C}.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/session.h"
#include "snapshot/snapshot.h"

namespace bifsim::fleet {

/** What buildSgemmWarmImage() prepared, for welcome frames and spawn
 *  configuration. */
struct WarmImageInfo
{
    uint32_t matrixN = 0;                  ///< Square size of A/B/C.
    std::vector<std::string> kernels;      ///< Registry order.
    std::vector<uint64_t> bufferBytes;     ///< Registry order.
};

/**
 * Cold-boots a FullSystem session (guest OS up, driver resident),
 * compiles and loads the six SGEMM variants, allocates the A/B/C
 * buffers for @p n x @p n matrices and snapshots the lot.
 * @p ram_bytes sizes guest DRAM; @p cores sets the shader-core count
 * baked into the image.  @return the sealed image bytes (feed to
 * snapshot::Image::fromBytes or write to disk).
 */
std::vector<uint8_t> buildSgemmWarmImage(uint32_t n,
                                         size_t ram_bytes = 64u << 20,
                                         unsigned cores = 4);

/** Describes a warm image: kernel names and buffer sizes from its
 *  SESS chunk, matrixN inferred from buffer 0 (sqrt(bytes/4)).
 *  @throws snapshot::SnapshotError on images without a SESS chunk. */
WarmImageInfo inspectWarmImage(const snapshot::Image &image);

} // namespace bifsim::fleet

#endif // BIFSIM_FLEET_WARM_IMAGE_H
