#include "fleet/session_pool.h"

namespace bifsim::fleet {

SessionPool::SessionPool(std::shared_ptr<const snapshot::Image> image,
                         PoolConfig cfg)
    : image_(std::move(image)), cfg_(std::move(cfg))
{
    if (!image_)
        snapshot::snapshotError("session pool needs an image");
    if (cfg_.maxSessions == 0)
        snapshot::snapshotError("session pool cap must be nonzero");
    // Every tenant's results must be bit-identical to a solo run; the
    // asynchronous JM thread is the one source of schedule-dependent
    // interleaving, so the pool always forces synchronous submission.
    cfg_.base.gpu.syncSubmit = true;
    ramImage_ = RamImage::sealFromSnapshot(*image_);
    cfg_.base.ramImage = ramImage_;
}

SessionPool::~SessionPool() = default;

std::unique_ptr<SessionPool::Entry>
SessionPool::spawn(uint32_t id)
{
    auto e = std::make_unique<Entry>();
    e->id = id;
    e->session = rt::Session::fromSnapshot(*image_, cfg_.base);
    return e;
}

SessionPool::Lease
SessionPool::acquire()
{
    uint32_t id;
    {
        sim::UniqueLock l(lock_);
        bool waited = false;
        while (true) {
            if (!idle_.empty()) {
                std::unique_ptr<Entry> e = std::move(idle_.back());
                idle_.pop_back();
                if (waited)
                    ++stats_.acquireWaits;
                return Lease(this, std::move(e));
            }
            if (live_ + spawning_ < cfg_.maxSessions)
                break;
            waited = true;
            cv_.wait(l);
        }
        id = nextId_++;
        ++spawning_;
        if (waited)
            ++stats_.acquireWaits;
    }

    // Spawn outside the lock: constructing a Session (GPU worker
    // threads, CoW map or full RAM copy) is the expensive path and
    // must not serialise releases or other spawns.
    std::unique_ptr<Entry> e;
    try {
        e = spawn(id);
    } catch (...) {
        sim::LockGuard g(lock_);
        --spawning_;
        cv_.notify_all();
        throw;
    }
    {
        sim::LockGuard g(lock_);
        --spawning_;
        ++live_;
        ++stats_.spawns;
    }
    return Lease(this, std::move(e));
}

void
SessionPool::release(std::unique_ptr<Entry> e)
{
    // Recycle eagerly on the releasing thread so the next acquire()
    // gets a clean session with zero latency.  A failed reset means
    // the session is in an unknown state: drop it (the cap slot frees
    // up, so a future acquire will spawn a replacement).
    bool ok = true;
    try {
        e->session->resetFromSnapshot(*image_);
    } catch (...) {
        ok = false;
    }
    {
        sim::LockGuard g(lock_);
        if (ok) {
            ++stats_.recycles;
            idle_.push_back(std::move(e));
        } else {
            ++stats_.recycleFailures;
            --live_;
        }
        cv_.notify_all();
    }
    // A dropped entry is destroyed here, outside the lock — the
    // Session destructor joins its GPU worker threads.
}

PoolStats
SessionPool::stats() const
{
    sim::LockGuard g(lock_);
    PoolStats s = stats_;
    s.live = live_;
    s.idle = idle_.size();
    return s;
}

} // namespace bifsim::fleet
