#ifndef BIFSIM_FLEET_FLEET_H
#define BIFSIM_FLEET_FLEET_H

/**
 * @file
 * The fleet server: simulation-as-a-service over one warm image
 * (DESIGN.md §5j).
 *
 * A FleetServer owns a SessionPool and a global admission queue.
 * Tenants submit JobRequests — in-process through submitSync(), or
 * over a Unix socket through serve() (the `simd` daemon wraps this) —
 * and a fixed crew of scheduler workers executes them on pooled
 * sessions:
 *
 *   submit -> admission control -> per-tenant FIFO -> round-robin
 *   across tenants -> worker leases a session -> writes, launch,
 *   readback -> result callback
 *
 * Fairness is deficit-free round-robin at job granularity: each
 * tenant has its own FIFO and workers rotate over the tenants with
 * queued work, so a tenant blasting thousands of jobs delays its own
 * backlog, not its neighbours'.  Backpressure is by rejection:
 * per-tenant and global queue caps are enforced at admission and an
 * over-cap submit fails fast with JobStatus::Rejected instead of
 * queueing unboundedly.
 *
 * Determinism contract: pooled sessions run with syncSubmit forced
 * on, so every job's kernel statistics, readback bytes and (optional)
 * post-job RAM CRC are bit-identical to the same request run on a
 * solo cold-booted session — concurrency changes the schedule, never
 * the results (tests/test_fleet.cc proves this T threads x S
 * sessions deep).
 *
 * Lock order: queueLock_ and statsLock_ are leaves (never held while
 * calling into the pool, a session, or a callback); connLock_ only
 * ever nests around fd bookkeeping.
 */

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "fleet/fleet_stats.h"
#include "fleet/proto.h"
#include "fleet/session_pool.h"
#include "fleet/warm_image.h"
#include "trace/trace.h"

namespace bifsim::fleet {

/** Server sizing. */
struct FleetConfig
{
    PoolConfig pool;                 ///< Session pool (cap, knobs).
    unsigned workers = 4;            ///< Scheduler worker threads.
    size_t maxQueuedPerTenant = 32;  ///< Admission cap per tenant.
    size_t maxQueuedTotal = 256;     ///< Admission cap, all tenants.
    bool trace = false;              ///< Fleet-level job tracing.
    size_t traceBufferEvents = 1u << 14;
};

/** Ceiling on thread count per job (admission-time sanity cap). */
constexpr uint64_t kMaxJobThreads = 1ull << 24;

/**
 * The daemon core.  Construction spawns the worker threads;
 * destruction drains and joins them.
 */
class FleetServer
{
  public:
    /** @p image: a validated warm-boot image (see warm_image.h).
     *  @throws snapshot::SnapshotError on images a pool cannot use. */
    FleetServer(std::shared_ptr<const snapshot::Image> image,
                FleetConfig cfg);
    ~FleetServer();

    FleetServer(const FleetServer &) = delete;
    FleetServer &operator=(const FleetServer &) = delete;

    /**
     * Submits @p req and blocks until its result.  Admission control
     * applies (an over-cap submit returns Rejected without blocking).
     * Threading: any thread, any number concurrently.
     */
    JobResultMsg submitSync(const JobRequest &req);

    /**
     * Submits @p req; @p done fires exactly once with the result, on
     * a scheduler worker (or inline on rejection).  @p done must not
     * block for long and must not call back into submit.
     * Threading: any thread.
     */
    void submitAsync(JobRequest req,
                     std::function<void(JobResultMsg)> done)
        EXCLUDES(queueLock_);

    /**
     * Binds @p socket_path (unlinking any stale socket), accepts
     * clients and serves frames until requestShutdown().  Each
     * connection gets a greeting Welcome frame and a dedicated reader
     * thread.  Blocks the calling thread for the server's lifetime.
     * @return 0 on clean shutdown, nonzero on socket setup failure
     * (message on stderr).
     */
    int serve(const std::string &socket_path);

    /** Asks serve() and the workers to drain queued jobs and stop.
     *  Safe from any thread, idempotent. */
    void requestShutdown();

    /** True once requestShutdown() has been called. */
    bool shuttingDown() const;

    /** What the image offers (sent as the FLTW greeting). */
    Welcome welcome() const;

    /** Merged fleet.* counters (server + pool + queue gauges). */
    FleetStats stats() const EXCLUDES(statsLock_, queueLock_);

    /** stats() rendered as the FLTS wire payload: counters plus the
     *  v2 uptime + per-tenant rows. */
    StatsReply statsReply() const EXCLUDES(statsLock_, queueLock_);

    /** The warm image's inventory (matrix size, registries). */
    const WarmImageInfo &imageInfo() const { return info_; }

    /** The session pool (for tests and benchmarks). */
    SessionPool &pool() { return *pool_; }

    /** The fleet-level tracer (enabled via FleetConfig::trace). */
    trace::Tracer &tracer() { return tracer_; }

  private:
    struct PendingJob
    {
        JobRequest req;
        std::function<void(JobResultMsg)> done;
        uint64_t admitNs = 0;
    };

    FleetConfig cfg_;
    WarmImageInfo info_;
    std::unique_ptr<SessionPool> pool_;
    trace::Tracer tracer_;

    mutable sim::Mutex queueLock_;
    sim::CondVar queueCv_;
    /** Per-tenant FIFOs; a tenant appears in rotation_ iff its deque
     *  is nonempty. */
    std::map<std::string, std::deque<PendingJob>> queues_
        GUARDED_BY(queueLock_);
    std::vector<std::string> rotation_ GUARDED_BY(queueLock_);
    size_t rrNext_ GUARDED_BY(queueLock_) = 0;
    size_t totalQueued_ GUARDED_BY(queueLock_) = 0;
    bool draining_ GUARDED_BY(queueLock_) = false;
    std::set<std::string> tenantsSeen_ GUARDED_BY(queueLock_);

    mutable sim::Mutex statsLock_;
    FleetStats stats_ GUARDED_BY(statsLock_);
    /** Per-tenant lifetime totals, served in the v2 FLTS reply. */
    std::map<std::string, StatsReply::TenantRow> tenantStats_
        GUARDED_BY(statsLock_);
    /** Merged counters as of the last §5k metrics publish; the
     *  registry gets saturating deltas against this baseline. */
    FleetStats published_ GUARDED_BY(statsLock_);

    /** Construction time (trace::nowNs), for FLTS uptime. */
    const uint64_t startNs_;

    std::atomic<bool> shutdown_{false};

    /** Open connection fds, so shutdown can unblock their readers. */
    mutable sim::Mutex connLock_;
    std::vector<int> connFds_ GUARDED_BY(connLock_);

    std::vector<std::thread> workers_;

    void workerMain(unsigned idx);
    /** Pushes the fleet.* counter deltas since the last call into the
     *  always-on metrics registry (§5k) and refreshes the queue/pool
     *  gauges.  Called by workers after each job. */
    void publishFleetMetrics() EXCLUDES(statsLock_, queueLock_);
    bool popNext(PendingJob &out) EXCLUDES(queueLock_);
    JobResultMsg runJob(rt::Session &s, uint32_t session_id,
                        const JobRequest &req);
    void serveConnection(int fd);
};

} // namespace bifsim::fleet

#endif // BIFSIM_FLEET_FLEET_H
