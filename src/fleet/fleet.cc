#include "fleet/fleet.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <future>

#ifdef __linux__
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "instrument/stats.h"
#include "metrics/metrics.h"

namespace bifsim::fleet {

FleetServer::FleetServer(std::shared_ptr<const snapshot::Image> image,
                         FleetConfig cfg)
    : cfg_(std::move(cfg)), info_(inspectWarmImage(*image)),
      pool_(std::make_unique<SessionPool>(image, cfg_.pool)),
      tracer_(cfg_.trace, cfg_.traceBufferEvents),
      startNs_(trace::nowNs())
{
    cfg_.workers = std::max(1u, cfg_.workers);
    cfg_.maxQueuedPerTenant = std::max<size_t>(1, cfg_.maxQueuedPerTenant);
    cfg_.maxQueuedTotal = std::max<size_t>(1, cfg_.maxQueuedTotal);
    workers_.reserve(cfg_.workers);
    for (unsigned i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });
}

FleetServer::~FleetServer()
{
    requestShutdown();
    for (std::thread &t : workers_)
        t.join();
}

void
FleetServer::requestShutdown()
{
    shutdown_.store(true, std::memory_order_release);
    sim::LockGuard g(queueLock_);
    draining_ = true;
    queueCv_.notify_all();
}

bool
FleetServer::shuttingDown() const
{
    return shutdown_.load(std::memory_order_acquire);
}

Welcome
FleetServer::welcome() const
{
    Welcome w;
    w.version = kProtoVersion;
    w.kernels = info_.kernels;
    w.bufferBytes = info_.bufferBytes;
    return w;
}

FleetStats
FleetServer::stats() const
{
    FleetStats s;
    {
        sim::LockGuard g(statsLock_);
        s = stats_;
    }
    PoolStats p = pool_->stats();
    s.spawns = p.spawns;
    s.recycles = p.recycles;
    s.recycleFailures = p.recycleFailures;
    s.acquireWaits = p.acquireWaits;
    s.sessionsLive = p.live;
    s.sessionsIdle = p.idle;
    {
        sim::LockGuard g(queueLock_);
        s.queueDepth = totalQueued_;
    }
    return s;
}

StatsReply
FleetServer::statsReply() const
{
    std::vector<gpu::NamedCounter> counters;
    FleetStats s = stats();
    gpu::appendCounters(counters, s);
    StatsReply r;
    r.counters.reserve(counters.size());
    for (const gpu::NamedCounter &c : counters)
        r.counters.emplace_back(c.name, c.value);
    r.uptimeNs = trace::nowNs() - startNs_;
    {
        sim::LockGuard g(statsLock_);
        r.tenants.reserve(tenantStats_.size());
        for (const auto &[name, row] : tenantStats_)
            r.tenants.push_back(row);   // std::map: sorted by name.
    }
    return r;
}

// ----------------------------------------------------------- admission

void
FleetServer::submitAsync(JobRequest req,
                         std::function<void(JobResultMsg)> done)
{
    uint64_t now = trace::nowNs();
    std::string tenant = req.tenant;   // req is moved into the queue.
    std::string reject;
    uint64_t queued_now = 0;
    uint64_t tenants = 0;
    {
        sim::LockGuard g(queueLock_);
        if (draining_) {
            reject = "server is draining";
        } else if (totalQueued_ >= cfg_.maxQueuedTotal) {
            reject = "global queue full";
        } else {
            std::deque<PendingJob> &q = queues_[req.tenant];
            if (q.size() >= cfg_.maxQueuedPerTenant) {
                reject = "tenant queue full";
            } else {
                if (q.empty())
                    rotation_.push_back(req.tenant);
                tenantsSeen_.insert(req.tenant);
                tenants = tenantsSeen_.size();
                q.push_back(
                    PendingJob{std::move(req), std::move(done), now});
                ++totalQueued_;
                queued_now = totalQueued_;
                queueCv_.notify_one();
            }
        }
    }
    {
        sim::LockGuard g(statsLock_);
        ++stats_.jobsSubmitted;
        StatsReply::TenantRow &row = tenantStats_[tenant];
        if (row.name.empty())
            row.name = tenant;
        ++row.submitted;
        if (!reject.empty()) {
            ++stats_.jobsRejected;
        } else {
            stats_.queuePeak = std::max(stats_.queuePeak, queued_now);
            // Set sizes are captured under queueLock_ but applied
            // here under statsLock_; concurrent submits can apply out
            // of order, so keep the high-water mark, not the last
            // writer.
            stats_.tenantsSeen = std::max(stats_.tenantsSeen, tenants);
        }
    }
    if (!reject.empty()) {
        // `done` was not consumed on this path.
        JobResultMsg m;
        m.status = JobStatus::Rejected;
        m.detail = reject;
        done(m);
    }
}

JobResultMsg
FleetServer::submitSync(const JobRequest &req)
{
    std::promise<JobResultMsg> p;
    std::future<JobResultMsg> f = p.get_future();
    submitAsync(req, [&p](JobResultMsg m) { p.set_value(std::move(m)); });
    return f.get();
}

bool
FleetServer::popNext(PendingJob &out)
{
    sim::UniqueLock l(queueLock_);
    while (totalQueued_ == 0 && !draining_)
        queueCv_.wait(l);
    if (totalQueued_ == 0)
        return false;
    if (rrNext_ >= rotation_.size())
        rrNext_ = 0;
    const std::string tenant = rotation_[rrNext_];
    auto it = queues_.find(tenant);
    out = std::move(it->second.front());
    it->second.pop_front();
    --totalQueued_;
    if (it->second.empty()) {
        queues_.erase(it);
        // Erasing at rrNext_ shifts the next tenant into this slot.
        rotation_.erase(rotation_.begin() +
                        static_cast<ptrdiff_t>(rrNext_));
    } else {
        ++rrNext_;
    }
    return true;
}

// ----------------------------------------------------------- execution

JobResultMsg
FleetServer::runJob(rt::Session &s, uint32_t session_id,
                    const JobRequest &req)
{
    JobResultMsg m;
    m.sessionId = session_id;
    auto bad = [&m](std::string detail) -> JobResultMsg & {
        m.status = JobStatus::BadRequest;
        m.detail = std::move(detail);
        return m;
    };

    const std::vector<rt::KernelHandle> &kernels = s.kernels();
    const std::vector<rt::Buffer> &buffers = s.buffers();
    if (req.kernel >= kernels.size())
        return bad(strfmt("kernel index %u out of range (%zu loaded)",
                          req.kernel, kernels.size()));
    if (!req.gx || !req.gy || !req.gz || !req.lx || !req.ly || !req.lz)
        return bad("launch dimensions must be nonzero");
    uint64_t threads = static_cast<uint64_t>(req.gx) * req.gy * req.gz;
    if (threads > kMaxJobThreads)
        return bad(strfmt("job requests %llu threads, cap is %llu",
                          static_cast<unsigned long long>(threads),
                          static_cast<unsigned long long>(
                              kMaxJobThreads)));

    std::vector<rt::Arg> args;
    args.reserve(req.args.size());
    for (const ArgSpec &a : req.args) {
        if (a.kind == ArgSpec::Kind::BufIndex) {
            if (a.value >= buffers.size())
                return bad(strfmt("arg buffer index %u out of range "
                                  "(%zu buffers)",
                                  a.value, buffers.size()));
            args.push_back(rt::Arg::buf(buffers[a.value]));
        } else {
            rt::Arg imm;
            imm.kind = a.kind == ArgSpec::Kind::I32 ? rt::Arg::Kind::I32
                       : a.kind == ArgSpec::Kind::U32
                           ? rt::Arg::Kind::U32
                           : rt::Arg::Kind::F32;
            imm.value = a.value;
            args.push_back(imm);
        }
    }

    for (const WriteSpec &w : req.writes) {
        if (w.buf >= buffers.size())
            return bad(strfmt("write buffer index %u out of range",
                              w.buf));
        const rt::Buffer &b = buffers[w.buf];
        if (w.offset > b.bytes || w.bytes.size() > b.bytes - w.offset)
            return bad(strfmt("write to buffer %u overruns its %zu "
                              "bytes",
                              w.buf, b.bytes));
    }
    uint64_t total_read = 0;
    for (const ReadSpec &r : req.reads) {
        if (r.buf >= buffers.size())
            return bad(strfmt("read buffer index %u out of range",
                              r.buf));
        const rt::Buffer &b = buffers[r.buf];
        if (r.offset > b.bytes || r.length > b.bytes - r.offset)
            return bad(strfmt("read from buffer %u overruns its %zu "
                              "bytes",
                              r.buf, b.bytes));
        total_read += r.length;
        if (total_read > kMaxFrameBytes / 2)
            return bad("readback exceeds frame budget");
    }

    // Validated: touch the session.
    try {
        for (const WriteSpec &w : req.writes) {
            if (!w.bytes.empty())
                s.write(buffers[w.buf], w.bytes.data(), w.bytes.size(),
                        static_cast<size_t>(w.offset));
        }
        gpu::JobResult r = s.enqueue(
            kernels[req.kernel], rt::NDRange{req.gx, req.gy, req.gz},
            rt::NDRange{req.lx, req.ly, req.lz}, args);
        if (r.faulted) {
            m.status = JobStatus::Fault;
            m.detail = r.fault.detail.empty() ? "gpu fault"
                                              : r.fault.detail;
            return m;
        }
        m.kernelInstrs = r.kernel.totalInstrs();
        m.threadsLaunched = r.kernel.threadsLaunched;
        m.readback.reserve(static_cast<size_t>(total_read));
        std::vector<uint8_t> tmp;
        for (const ReadSpec &rd : req.reads) {
            tmp.resize(static_cast<size_t>(rd.length));
            if (!tmp.empty())
                s.read(buffers[rd.buf], tmp.data(), tmp.size(),
                       static_cast<size_t>(rd.offset));
            m.readback.insert(m.readback.end(), tmp.begin(), tmp.end());
        }
        if (req.wantRamCrc) {
            PhysMem &mem = s.system().mem();
            m.ramCrc = snapshot::crc32(
                mem.hostPtr(rt::System::kRamBase), mem.size());
        }
        m.status = JobStatus::Ok;
    } catch (const SimError &e) {
        m.status = JobStatus::Fault;
        m.detail = e.what();
        m.readback.clear();
    }
    return m;
}

void
FleetServer::workerMain(unsigned idx)
{
    trace::TraceBuffer *tb =
        tracer_.registerThread("fleet-w" + std::to_string(idx));
    uint64_t my_completed = 0;
    PendingJob job;
    while (popNext(job)) {
        uint64_t bytes_in = 0;
        for (const WriteSpec &w : job.req.writes)
            bytes_in += w.bytes.size();

        uint64_t t0 = trace::nowNs();
        JobResultMsg m;
        try {
            SessionPool::Lease lease = pool_->acquire();
            m = runJob(lease.session(), lease.id(), job.req);
        } catch (const SimError &e) {
            // Spawn/recycle failure, not a job-level problem.
            m.status = JobStatus::Fault;
            m.detail = e.what();
        }
        uint64_t t1 = trace::nowNs();
        m.queueNs = t0 - job.admitNs;
        m.execNs = t1 - t0;

        {
            sim::LockGuard g(statsLock_);
            switch (m.status) {
            case JobStatus::Ok: ++stats_.jobsCompleted; break;
            case JobStatus::Fault: ++stats_.jobsFaulted; break;
            case JobStatus::BadRequest: ++stats_.jobsBadRequest; break;
            case JobStatus::Rejected: ++stats_.jobsRejected; break;
            }
            stats_.queueNsTotal += m.queueNs;
            stats_.execNsTotal += m.execNs;
            stats_.bytesIn += bytes_in;
            stats_.bytesOut += m.readback.size();
            StatsReply::TenantRow &row = tenantStats_[job.req.tenant];
            if (row.name.empty())
                row.name = job.req.tenant;
            if (m.status == JobStatus::Ok)
                ++row.completed;
            else
                ++row.faulted;
            row.queueNs += m.queueNs;
            row.execNs += m.execNs;
        }
        publishFleetMetrics();
        if (tb) {
            tb->span("job", "fleet", t0, "session", m.sessionId,
                     "status", static_cast<uint64_t>(m.status));
            tb->counter("fleet.worker_jobs", ++my_completed);
        }
        job.done(m);
        job = PendingJob{};   // Drop the closure (and any socket refs).
    }
}

void
FleetServer::publishFleetMetrics()
{
    if (!metrics::registry().enabled())
        return;
    // Merged lifetime view (locks statsLock_/queueLock_ internally,
    // and the pool's own lock — all leaves, never nested here).
    FleetStats now = stats();
    std::vector<gpu::NamedCounter> deltas;
    {
        sim::LockGuard g(statsLock_);
        // Saturating deltas: two workers can race stats() reads, so a
        // later-locking worker may hold an older `now`; whoever locked
        // first already published those counts.
        auto sub = [](uint64_t a, uint64_t b) {
            return a > b ? a - b : 0;
        };
        FleetStats d;
        d.jobsSubmitted = sub(now.jobsSubmitted, published_.jobsSubmitted);
        d.jobsCompleted = sub(now.jobsCompleted, published_.jobsCompleted);
        d.jobsFaulted = sub(now.jobsFaulted, published_.jobsFaulted);
        d.jobsRejected = sub(now.jobsRejected, published_.jobsRejected);
        d.jobsBadRequest =
            sub(now.jobsBadRequest, published_.jobsBadRequest);
        d.queueNsTotal = sub(now.queueNsTotal, published_.queueNsTotal);
        d.execNsTotal = sub(now.execNsTotal, published_.execNsTotal);
        d.bytesIn = sub(now.bytesIn, published_.bytesIn);
        d.bytesOut = sub(now.bytesOut, published_.bytesOut);
        d.spawns = sub(now.spawns, published_.spawns);
        d.recycles = sub(now.recycles, published_.recycles);
        d.recycleFailures =
            sub(now.recycleFailures, published_.recycleFailures);
        d.acquireWaits = sub(now.acquireWaits, published_.acquireWaits);
        auto newer = [&](uint64_t FleetStats::*f) {
            published_.*f = std::max(published_.*f, now.*f);
        };
        newer(&FleetStats::jobsSubmitted);
        newer(&FleetStats::jobsCompleted);
        newer(&FleetStats::jobsFaulted);
        newer(&FleetStats::jobsRejected);
        newer(&FleetStats::jobsBadRequest);
        newer(&FleetStats::queueNsTotal);
        newer(&FleetStats::execNsTotal);
        newer(&FleetStats::bytesIn);
        newer(&FleetStats::bytesOut);
        newer(&FleetStats::spawns);
        newer(&FleetStats::recycles);
        newer(&FleetStats::recycleFailures);
        newer(&FleetStats::acquireWaits);
        gpu::appendCounters(deltas, d);
    }
    metrics::Registry &reg = metrics::registry();
    reg.publish(deltas);
    // Level-valued series go in as gauges (store-latest), not sums.
    reg.setGauge("fleet.queue_depth", now.queueDepth);
    reg.setGauge("fleet.sessions_live", now.sessionsLive);
    reg.setGauge("fleet.sessions_idle", now.sessionsIdle);
    reg.setGauge("fleet.queue_peak", now.queuePeak);
    reg.setGauge("fleet.tenants_seen", now.tenantsSeen);
}

// -------------------------------------------------------------- socket

#ifdef __linux__

namespace {

/** Per-connection write side, shared with in-flight result callbacks.
 *  The reader thread waits for pending results before closing the fd,
 *  so a late callback can never write into a recycled descriptor. */
struct ConnState
{
    explicit ConnState(int fd) : fd(fd) {}

    sim::Mutex lock;
    sim::CondVar cv;
    int fd GUARDED_BY(lock);
    size_t pending GUARDED_BY(lock) = 0;
    bool closed GUARDED_BY(lock) = false;

    void
    sendFrame(uint32_t kind, const std::vector<uint8_t> &payload)
    {
        sim::LockGuard g(lock);
        if (closed)
            return;
        try {
            writeFrame(fd, kind, payload);
        } catch (const SimError &) {
            // Peer went away; the reader will observe EOF and clean up.
        }
    }
};

} // namespace

void
FleetServer::serveConnection(int fd)
{
    auto conn = std::make_shared<ConnState>(fd);
    {
        snapshot::ChunkWriter w;
        welcome().serialize(w);
        conn->sendFrame(kMsgWelcome, w.data());
    }

    Frame frame;
    while (true) {
        try {
            if (!readFrame(fd, frame))
                break;
        } catch (const SimError &) {
            break;   // Truncated mid-frame or read error: drop the peer.
        }
        if (frame.kind == kMsgJob) {
            JobRequest req;
            try {
                snapshot::ChunkReader r = frame.reader();
                req = JobRequest::parse(r);
            } catch (const SimError &e) {
                JobResultMsg m;
                m.status = JobStatus::BadRequest;
                m.detail = e.what();
                snapshot::ChunkWriter w;
                m.serialize(w);
                conn->sendFrame(kMsgResult, w.data());
                continue;
            }
            {
                sim::LockGuard g(conn->lock);
                ++conn->pending;
            }
            submitAsync(std::move(req), [conn](JobResultMsg m) {
                snapshot::ChunkWriter w;
                m.serialize(w);
                conn->sendFrame(kMsgResult, w.data());
                sim::LockGuard g(conn->lock);
                --conn->pending;
                conn->cv.notify_all();
            });
        } else if (frame.kind == kMsgStatsQuery) {
            snapshot::ChunkWriter w;
            statsReply().serialize(w);
            conn->sendFrame(kMsgStatsReply, w.data());
        } else if (frame.kind == kMsgShutdown) {
            requestShutdown();
        } else {
            JobResultMsg m;
            m.status = JobStatus::BadRequest;
            m.detail = "unknown frame kind " +
                       snapshot::tagName(frame.kind);
            snapshot::ChunkWriter w;
            m.serialize(w);
            conn->sendFrame(kMsgResult, w.data());
        }
    }

    // Wait out in-flight results, then retire the descriptor.
    {
        sim::UniqueLock l(conn->lock);
        while (conn->pending != 0)
            conn->cv.wait(l);
        conn->closed = true;
    }
    {
        sim::LockGuard g(connLock_);
        connFds_.erase(
            std::remove(connFds_.begin(), connFds_.end(), fd),
            connFds_.end());
    }
    ::close(fd);
}

int
FleetServer::serve(const std::string &socket_path)
{
    int lfd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (lfd < 0) {
        std::fprintf(stderr, "simd: socket: %s\n", std::strerror(errno));
        return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "simd: socket path too long: %s\n",
                     socket_path.c_str());
        ::close(lfd);
        return 1;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    ::unlink(socket_path.c_str());
    if (::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(lfd, 128) != 0) {
        std::fprintf(stderr, "simd: bind/listen %s: %s\n",
                     socket_path.c_str(), std::strerror(errno));
        ::close(lfd);
        return 1;
    }

    std::vector<std::thread> readers;
    while (!shuttingDown()) {
        pollfd p{lfd, POLLIN, 0};
        int n = ::poll(&p, 1, 200);
        if (n < 0 && errno != EINTR)
            break;
        if (n <= 0 || !(p.revents & POLLIN))
            continue;
        int cfd = ::accept4(lfd, nullptr, nullptr, SOCK_CLOEXEC);
        if (cfd < 0)
            continue;
        {
            sim::LockGuard g(connLock_);
            connFds_.push_back(cfd);
        }
        readers.emplace_back([this, cfd] { serveConnection(cfd); });
    }

    ::close(lfd);
    ::unlink(socket_path.c_str());
    // Unblock readers parked in read(): half-close every live
    // connection, then wait for their threads (each drains its
    // pending results first).
    {
        sim::LockGuard g(connLock_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : readers)
        t.join();
    return 0;
}

#else // !__linux__

void
FleetServer::serveConnection(int)
{
}

int
FleetServer::serve(const std::string &)
{
    std::fprintf(stderr, "simd: fleet sockets require Linux\n");
    return 1;
}

#endif

} // namespace bifsim::fleet
