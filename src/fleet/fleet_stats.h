#ifndef BIFSIM_FLEET_FLEET_STATS_H
#define BIFSIM_FLEET_FLEET_STATS_H

/**
 * @file
 * Fleet server counters (DESIGN.md §5j).
 *
 * A dependency-free leaf header: the fleet server fills this struct
 * and instrument/stats.cc turns it into "fleet."-prefixed
 * NamedCounters, keeping the counter registry (and simlint's
 * counters check, docs/COUNTERS.md) in one place without
 * instrument/ depending on the fleet subsystem proper.
 *
 * All counters are monotone accumulators except the two session
 * gauges, which snapshot the pool at query time.
 */

#include <cstdint>
#include <cstddef>

namespace bifsim::fleet {

struct FleetStats
{
    uint64_t jobsSubmitted = 0;    ///< Admission attempts.
    uint64_t jobsCompleted = 0;    ///< Ran to completion (Ok).
    uint64_t jobsFaulted = 0;      ///< GPU-side faults.
    uint64_t jobsRejected = 0;     ///< Backpressure rejections.
    uint64_t jobsBadRequest = 0;   ///< Validation failures.
    uint64_t queueNsTotal = 0;     ///< Sum of admission->dispatch ns.
    uint64_t execNsTotal = 0;      ///< Sum of dispatch->completion ns.
    uint64_t queuePeak = 0;        ///< High-water mark of queued jobs.
    uint64_t tenantsSeen = 0;      ///< Distinct tenant names admitted.
    uint64_t bytesIn = 0;          ///< Job write payload bytes.
    uint64_t bytesOut = 0;         ///< Job readback bytes.
    uint64_t spawns = 0;           ///< Pool: cold spawns from the image.
    uint64_t recycles = 0;         ///< Pool: in-place session resets.
    uint64_t recycleFailures = 0;  ///< Pool: resets that dropped a session.
    uint64_t acquireWaits = 0;     ///< Pool: acquires that blocked.
    uint64_t sessionsLive = 0;     ///< Gauge: sessions in existence.
    uint64_t sessionsIdle = 0;     ///< Gauge: sessions parked, ready.
    uint64_t queueDepth = 0;       ///< Gauge: jobs queued right now.
};

} // namespace bifsim::fleet

#endif // BIFSIM_FLEET_FLEET_STATS_H
