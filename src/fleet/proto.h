#ifndef BIFSIM_FLEET_PROTO_H
#define BIFSIM_FLEET_PROTO_H

/**
 * @file
 * Fleet wire protocol (DESIGN.md §5j).
 *
 * The `simd` daemon and its clients speak length-prefixed TLV frames
 * over a SOCK_STREAM Unix socket, reusing the snapshot container
 * discipline (little-endian, CRC'd payloads, parse-then-commit):
 *
 *   frame: u32 kind | u32 length | u32 crc32(payload) | payload
 *
 * Frame kinds are 4CCs minted with snapshot::makeTag, so simlint's
 * tlv-tag check guarantees they never collide with each other or with
 * the BSNP/BRPL chunk tags:
 *
 *   FLTW  daemon -> client   welcome: proto version + image inventory
 *   FLTJ  client -> daemon   job submission
 *   FLTR  daemon -> client   job result
 *   FLTQ  client -> daemon   server stats query (empty payload)
 *   FLTS  daemon -> client   server stats reply
 *   FLTX  client -> daemon   drain-and-shutdown request
 *
 * Every payload decoder is adversarially robust exactly like the
 * snapshot readers: reads are bounds-checked, element counts are
 * sanity-capped against the payload size, decode happens fully into
 * locals before anything is acted on, and any violation throws a
 * located SnapshotError — a malformed client can be told "BadRequest"
 * but can never crash the daemon or leave a half-parsed job queued.
 *
 * Threading: the free functions here are stateless and reentrant; the
 * fd passed to readFrame/writeFrame must not be shared between
 * concurrent callers (the fleet server gives each connection one
 * reader and serialises writes per connection).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/snapshot.h"

namespace bifsim::fleet {

/** Protocol revision carried in the welcome frame.  v2 extends the
 *  FLTS stats reply with server uptime and per-tenant accounting
 *  rows; v1 replies (bare counter list) still parse. */
constexpr uint32_t kProtoVersion = 2;

/** Hard ceiling on one frame's payload; larger lengths are rejected
 *  before any allocation, so a hostile header cannot balloon memory. */
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/** @name Frame kinds.
 *  @{ */
constexpr uint32_t kMsgWelcome = snapshot::makeTag("FLTW");
constexpr uint32_t kMsgJob = snapshot::makeTag("FLTJ");
constexpr uint32_t kMsgResult = snapshot::makeTag("FLTR");
constexpr uint32_t kMsgStatsQuery = snapshot::makeTag("FLTQ");
constexpr uint32_t kMsgStatsReply = snapshot::makeTag("FLTS");
constexpr uint32_t kMsgShutdown = snapshot::makeTag("FLTX");
/** @} */

/** Caps on per-job element counts (validated at parse time). */
constexpr uint32_t kMaxArgs = 64;
constexpr uint32_t kMaxWrites = 64;
constexpr uint32_t kMaxReads = 64;
constexpr uint32_t kMaxTenantName = 256;

/** One kernel launch argument, referencing warm-image state by index. */
struct ArgSpec
{
    enum class Kind : uint8_t { BufIndex = 0, I32 = 1, U32 = 2, F32 = 3 };

    Kind kind = Kind::I32;
    uint32_t value = 0;   ///< BufIndex: index into the image's buffer
                          ///< registry; otherwise the immediate bits.
};

/** Host data copied into an image buffer before launch. */
struct WriteSpec
{
    uint32_t buf = 0;       ///< Buffer registry index.
    uint64_t offset = 0;
    std::vector<uint8_t> bytes;
};

/** A buffer range copied back to the client after launch. */
struct ReadSpec
{
    uint32_t buf = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
};

/** A complete job submission (FLTJ payload). */
struct JobRequest
{
    std::string tenant;       ///< Fairness/accounting key.
    uint32_t kernel = 0;      ///< Index into the image's kernel registry.
    uint32_t gx = 1, gy = 1, gz = 1;   ///< Global NDRange.
    uint32_t lx = 1, ly = 1, lz = 1;   ///< Workgroup NDRange.
    std::vector<ArgSpec> args;
    std::vector<WriteSpec> writes;
    std::vector<ReadSpec> reads;
    bool wantRamCrc = false;  ///< Ask for a post-job guest-RAM CRC32
                              ///< (determinism evidence; costs a full
                              ///< RAM scan).

    void serialize(snapshot::ChunkWriter &w) const;

    /** Decodes and fully validates one FLTJ payload (counts capped,
     *  expectEnd enforced).  @throws snapshot::SnapshotError. */
    static JobRequest parse(snapshot::ChunkReader &r);
};

/** How a submitted job ended. */
enum class JobStatus : uint8_t
{
    Ok = 0,          ///< Ran to completion, readbacks attached.
    Fault = 1,       ///< GPU-side fault (detail holds the fault text).
    Rejected = 2,    ///< Admission control: queue caps hit, try later.
    BadRequest = 3,  ///< Malformed or out-of-range request.
};

/** Renders a JobStatus for logs. */
const char *jobStatusName(JobStatus s);

/** A job outcome (FLTR payload). */
struct JobResultMsg
{
    JobStatus status = JobStatus::BadRequest;
    std::string detail;         ///< Fault/rejection/parse-error text.
    uint64_t queueNs = 0;       ///< Admission-to-dispatch latency.
    uint64_t execNs = 0;        ///< Dispatch-to-completion latency.
    uint32_t sessionId = 0;     ///< Pool session that ran the job.
    uint32_t ramCrc = 0;        ///< Guest-RAM CRC32 (wantRamCrc only).
    uint64_t kernelInstrs = 0;  ///< Thread-weighted executed instrs.
    uint64_t threadsLaunched = 0;
    std::vector<uint8_t> readback;   ///< ReadSpecs, concatenated in
                                     ///< request order.

    void serialize(snapshot::ChunkWriter &w) const;
    static JobResultMsg parse(snapshot::ChunkReader &r);
};

/** Daemon greeting (FLTW payload): what the warm image offers. */
struct Welcome
{
    uint32_t version = kProtoVersion;
    std::vector<std::string> kernels;      ///< Registry order.
    std::vector<uint64_t> bufferBytes;     ///< Registry order.

    void serialize(snapshot::ChunkWriter &w) const;
    static Welcome parse(snapshot::ChunkReader &r);
};

/** Server counters (FLTS payload): name -> value in registry order,
 *  plus (proto v2) server uptime and per-tenant accounting rows so
 *  clients can derive per-tenant rates without scraping logs. */
struct StatsReply
{
    /** One tenant's lifetime totals on this server. */
    struct TenantRow
    {
        std::string name;
        uint64_t submitted = 0;   ///< Admission attempts.
        uint64_t completed = 0;   ///< Jobs that ran to Ok.
        uint64_t faulted = 0;     ///< Fault + BadRequest outcomes.
        uint64_t queueNs = 0;     ///< Summed admission->dispatch ns.
        uint64_t execNs = 0;      ///< Summed dispatch->completion ns.
    };

    std::vector<std::pair<std::string, uint64_t>> counters;
    uint64_t uptimeNs = 0;        ///< Server age (v2; 0 from v1 peers).
    std::vector<TenantRow> tenants;   ///< Sorted by name (v2).

    void serialize(snapshot::ChunkWriter &w) const;

    /** Decodes both layouts: a v1 payload ends after the counter
     *  list; a v2 payload carries uptime + tenant rows after it. */
    static StatsReply parse(snapshot::ChunkReader &r);
};

/** An fd-level frame, kind + raw (already CRC-verified) payload. */
struct Frame
{
    uint32_t kind = 0;
    std::vector<uint8_t> payload;

    /** Bounds-checked reader over the payload. */
    snapshot::ChunkReader
    reader() const
    {
        return snapshot::ChunkReader(kind, payload.data(),
                                     payload.size());
    }
};

/** Serialises a frame to wire bytes (header + CRC + payload). */
std::vector<uint8_t> encodeFrame(uint32_t kind,
                                 const std::vector<uint8_t> &payload);

/**
 * Reads one complete frame from @p fd (blocking, restarts on EINTR).
 * @return false on clean EOF at a frame boundary; true with @p out
 * filled otherwise.  @throws snapshot::SnapshotError on truncation
 * mid-frame, oversized length, CRC mismatch or read error.
 */
bool readFrame(int fd, Frame &out);

/** Writes one complete frame to @p fd (blocking, restarts on EINTR).
 *  @throws snapshot::SnapshotError on write error. */
void writeFrame(int fd, uint32_t kind,
                const std::vector<uint8_t> &payload);

} // namespace bifsim::fleet

#endif // BIFSIM_FLEET_PROTO_H
