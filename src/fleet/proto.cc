#include "fleet/proto.h"

#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace bifsim::fleet {

namespace snap = snapshot;

// ---------------------------------------------------------- JobRequest

void
JobRequest::serialize(snap::ChunkWriter &w) const
{
    w.str(tenant);
    w.u32(kernel);
    w.u32(gx);
    w.u32(gy);
    w.u32(gz);
    w.u32(lx);
    w.u32(ly);
    w.u32(lz);
    w.u8(wantRamCrc ? 1 : 0);
    w.u32(static_cast<uint32_t>(args.size()));
    for (const ArgSpec &a : args) {
        w.u8(static_cast<uint8_t>(a.kind));
        w.u32(a.value);
    }
    w.u32(static_cast<uint32_t>(writes.size()));
    for (const WriteSpec &s : writes) {
        w.u32(s.buf);
        w.u64(s.offset);
        w.u64(s.bytes.size());
        w.bytes(s.bytes.data(), s.bytes.size());
    }
    w.u32(static_cast<uint32_t>(reads.size()));
    for (const ReadSpec &s : reads) {
        w.u32(s.buf);
        w.u64(s.offset);
        w.u64(s.length);
    }
}

JobRequest
JobRequest::parse(snap::ChunkReader &r)
{
    JobRequest j;
    j.tenant = r.str();
    if (j.tenant.empty() || j.tenant.size() > kMaxTenantName)
        r.fail("tenant name empty or over " +
               std::to_string(kMaxTenantName) + " bytes");
    j.kernel = r.u32();
    j.gx = r.u32();
    j.gy = r.u32();
    j.gz = r.u32();
    j.lx = r.u32();
    j.ly = r.u32();
    j.lz = r.u32();
    j.wantRamCrc = r.u8() != 0;

    uint32_t nargs = r.u32();
    if (nargs > kMaxArgs)
        r.fail("arg count " + std::to_string(nargs) + " exceeds cap");
    j.args.reserve(nargs);
    for (uint32_t i = 0; i < nargs; ++i) {
        uint8_t kind = r.u8();
        if (kind > static_cast<uint8_t>(ArgSpec::Kind::F32))
            r.fail("bad arg kind " + std::to_string(kind));
        j.args.push_back(
            ArgSpec{static_cast<ArgSpec::Kind>(kind), r.u32()});
    }

    uint32_t nwrites = r.u32();
    if (nwrites > kMaxWrites)
        r.fail("write count " + std::to_string(nwrites) + " exceeds cap");
    j.writes.reserve(nwrites);
    for (uint32_t i = 0; i < nwrites; ++i) {
        WriteSpec s;
        s.buf = r.u32();
        s.offset = r.u64();
        uint64_t len = r.u64();
        if (len > r.remaining())
            r.fail("write payload length " + std::to_string(len) +
                   " exceeds remaining bytes");
        s.bytes.resize(static_cast<size_t>(len));
        r.bytes(s.bytes.data(), s.bytes.size());
        j.writes.push_back(std::move(s));
    }

    uint32_t nreads = r.u32();
    if (nreads > kMaxReads)
        r.fail("read count " + std::to_string(nreads) + " exceeds cap");
    j.reads.reserve(nreads);
    for (uint32_t i = 0; i < nreads; ++i) {
        ReadSpec s;
        s.buf = r.u32();
        s.offset = r.u64();
        s.length = r.u64();
        j.reads.push_back(s);
    }
    r.expectEnd();
    return j;
}

// --------------------------------------------------------- JobResultMsg

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
    case JobStatus::Ok: return "ok";
    case JobStatus::Fault: return "fault";
    case JobStatus::Rejected: return "rejected";
    case JobStatus::BadRequest: return "bad-request";
    }
    return "?";
}

void
JobResultMsg::serialize(snap::ChunkWriter &w) const
{
    w.u8(static_cast<uint8_t>(status));
    w.str(detail);
    w.u64(queueNs);
    w.u64(execNs);
    w.u32(sessionId);
    w.u32(ramCrc);
    w.u64(kernelInstrs);
    w.u64(threadsLaunched);
    w.u64(readback.size());
    w.bytes(readback.data(), readback.size());
}

JobResultMsg
JobResultMsg::parse(snap::ChunkReader &r)
{
    JobResultMsg m;
    uint8_t status = r.u8();
    if (status > static_cast<uint8_t>(JobStatus::BadRequest))
        r.fail("bad status " + std::to_string(status));
    m.status = static_cast<JobStatus>(status);
    m.detail = r.str();
    m.queueNs = r.u64();
    m.execNs = r.u64();
    m.sessionId = r.u32();
    m.ramCrc = r.u32();
    m.kernelInstrs = r.u64();
    m.threadsLaunched = r.u64();
    uint64_t len = r.u64();
    if (len > r.remaining())
        r.fail("readback length " + std::to_string(len) +
               " exceeds remaining bytes");
    m.readback.resize(static_cast<size_t>(len));
    r.bytes(m.readback.data(), m.readback.size());
    r.expectEnd();
    return m;
}

// ------------------------------------------------------------- Welcome

void
Welcome::serialize(snap::ChunkWriter &w) const
{
    w.u32(version);
    w.u32(static_cast<uint32_t>(kernels.size()));
    for (const std::string &k : kernels)
        w.str(k);
    w.u32(static_cast<uint32_t>(bufferBytes.size()));
    for (uint64_t b : bufferBytes)
        w.u64(b);
}

Welcome
Welcome::parse(snap::ChunkReader &r)
{
    Welcome wl;
    wl.version = r.u32();
    uint32_t nk = r.u32();
    if (nk > r.remaining())
        r.fail("kernel count " + std::to_string(nk) + " impossible");
    wl.kernels.reserve(nk);
    for (uint32_t i = 0; i < nk; ++i)
        wl.kernels.push_back(r.str());
    uint32_t nb = r.u32();
    if (static_cast<uint64_t>(nb) * 8 > r.remaining())
        r.fail("buffer count " + std::to_string(nb) + " impossible");
    wl.bufferBytes.reserve(nb);
    for (uint32_t i = 0; i < nb; ++i)
        wl.bufferBytes.push_back(r.u64());
    r.expectEnd();
    return wl;
}

// ---------------------------------------------------------- StatsReply

void
StatsReply::serialize(snap::ChunkWriter &w) const
{
    w.u32(static_cast<uint32_t>(counters.size()));
    for (const auto &[name, value] : counters) {
        w.str(name);
        w.u64(value);
    }
    // v2 extension: uptime + per-tenant rows.
    w.u64(uptimeNs);
    w.u32(static_cast<uint32_t>(tenants.size()));
    for (const TenantRow &t : tenants) {
        w.str(t.name);
        w.u64(t.submitted);
        w.u64(t.completed);
        w.u64(t.faulted);
        w.u64(t.queueNs);
        w.u64(t.execNs);
    }
}

StatsReply
StatsReply::parse(snap::ChunkReader &r)
{
    StatsReply s;
    uint32_t n = r.u32();
    if (n > r.remaining())
        r.fail("counter count " + std::to_string(n) + " impossible");
    s.counters.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        std::string name = r.str();
        uint64_t value = r.u64();
        s.counters.emplace_back(std::move(name), value);
    }
    if (r.remaining() == 0)
        return s;   // v1 payload: counters only.
    s.uptimeNs = r.u64();
    uint32_t nt = r.u32();
    // Each row is at least a length-prefixed name + five u64s.
    if (static_cast<uint64_t>(nt) * (4 + 5 * 8) > r.remaining())
        r.fail("tenant count " + std::to_string(nt) + " impossible");
    s.tenants.reserve(nt);
    for (uint32_t i = 0; i < nt; ++i) {
        TenantRow t;
        t.name = r.str();
        if (t.name.size() > kMaxTenantName)
            r.fail("tenant name exceeds cap");
        t.submitted = r.u64();
        t.completed = r.u64();
        t.faulted = r.u64();
        t.queueNs = r.u64();
        t.execNs = r.u64();
        s.tenants.push_back(std::move(t));
    }
    r.expectEnd();
    return s;
}

// ------------------------------------------------------------ frame IO

std::vector<uint8_t>
encodeFrame(uint32_t kind, const std::vector<uint8_t> &payload)
{
    if (payload.size() > kMaxFrameBytes)
        snap::snapshotError("fleet frame %s payload %zu exceeds cap",
                            snap::tagName(kind).c_str(), payload.size());
    snap::ChunkWriter w;
    w.u32(kind);
    w.u32(static_cast<uint32_t>(payload.size()));
    w.u32(snap::crc32(payload.data(), payload.size()));
    w.bytes(payload.data(), payload.size());
    return w.data();
}

#ifdef __linux__

namespace {

/** Reads exactly @p len bytes.  @return 0 on EOF before any byte,
 *  1 on success; throws on error or mid-buffer EOF. */
int
readFull(int fd, uint8_t *dst, size_t len)
{
    size_t got = 0;
    while (got < len) {
        ssize_t n = ::read(fd, dst + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            snap::snapshotError("fleet socket read: %s",
                                std::strerror(errno));
        }
        if (n == 0) {
            if (got == 0)
                return 0;
            snap::snapshotError("fleet socket EOF mid-frame "
                                "(%zu of %zu bytes)", got, len);
        }
        got += static_cast<size_t>(n);
    }
    return 1;
}

} // namespace

bool
readFrame(int fd, Frame &out)
{
    uint8_t hdr[12];
    if (readFull(fd, hdr, sizeof(hdr)) == 0)
        return false;
    snap::ChunkReader h(snap::makeTag("FHDR"), hdr, sizeof(hdr));
    uint32_t kind = h.u32();
    uint32_t len = h.u32();
    uint32_t want_crc = h.u32();
    if (len > kMaxFrameBytes)
        snap::snapshotError("fleet frame %s length %u exceeds cap",
                            snap::tagName(kind).c_str(), len);
    std::vector<uint8_t> payload(len);
    if (len && readFull(fd, payload.data(), len) == 0)
        snap::snapshotError("fleet frame %s truncated",
                            snap::tagName(kind).c_str());
    uint32_t got_crc = snap::crc32(payload.data(), payload.size());
    if (got_crc != want_crc)
        snap::snapshotError("fleet frame %s CRC mismatch "
                            "(stored 0x%08x, computed 0x%08x)",
                            snap::tagName(kind).c_str(), want_crc,
                            got_crc);
    out.kind = kind;
    out.payload = std::move(payload);
    return true;
}

void
writeFrame(int fd, uint32_t kind, const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> bytes = encodeFrame(kind, payload);
    size_t put = 0;
    while (put < bytes.size()) {
        // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not
        // kill the daemon with SIGPIPE.  Non-socket fds (tests piping
        // frames through regular files) fall back to write().
        ssize_t n = ::send(fd, bytes.data() + put, bytes.size() - put,
                           MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, bytes.data() + put, bytes.size() - put);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            snap::snapshotError("fleet socket write: %s",
                                std::strerror(errno));
        }
        put += static_cast<size_t>(n);
    }
}

#else // !__linux__

bool
readFrame(int, Frame &)
{
    snap::snapshotError("fleet sockets require Linux");
}

void
writeFrame(int, uint32_t, const std::vector<uint8_t> &)
{
    snap::snapshotError("fleet sockets require Linux");
}

#endif

} // namespace bifsim::fleet
