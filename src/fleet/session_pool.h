#ifndef BIFSIM_FLEET_SESSION_POOL_H
#define BIFSIM_FLEET_SESSION_POOL_H

/**
 * @file
 * A recycling pool of warm-boot sessions over one shared image
 * (DESIGN.md §5j).
 *
 * The pool is where the fleet's three sharing layers meet:
 *
 *  - the *parsed* snapshot::Image is validated (structure + every
 *    chunk CRC) exactly once at pool construction and shared by all
 *    spawns, instead of N sessions each re-reading and re-hashing the
 *    bytes;
 *  - guest RAM is a sealed mem::RamImage (memfd + MAP_PRIVATE): clean
 *    pages are shared by every pooled session, so N sessions cost far
 *    less than N full RAM copies and spawn skips the RAM memcpy;
 *  - released sessions are *recycled* in place (Session::
 *    resetFromSnapshot): the expensive System — GPU worker threads,
 *    decode caches — survives, and the restore costs O(dirtied
 *    state), which BENCH_fleet.json shows is >= 5x cheaper than a
 *    cold boot.
 *
 * Threading: acquire()/release (via Lease destruction) are safe from
 * any thread.  The Session inside a Lease follows the normal
 * single-owner Session contract — exactly one thread uses it while
 * the lease is held.  Spawning and recycling happen *outside* the
 * pool lock, so a slow spawn never blocks an unrelated release.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "runtime/session.h"
#include "snapshot/snapshot.h"

namespace bifsim::fleet {

/** Pool sizing and per-session host-side knobs. */
struct PoolConfig
{
    /** Hard ceiling on live sessions (acquire blocks at the cap). */
    size_t maxSessions = 64;

    /**
     * Host-side knob template for spawned sessions (gpu.hostThreads,
     * fastPath, trace...).  RAM geometry and shader-core count always
     * come from the image; syncSubmit is forced on so every tenant's
     * results are bit-identical to a solo run regardless of fleet
     * load (PR 8's determinism contract).
     */
    rt::SystemConfig base;
};

/** Pool observability counters (all monotone except the gauges). */
struct PoolStats
{
    uint64_t spawns = 0;           ///< Cold constructions from the image.
    uint64_t recycles = 0;         ///< In-place resets on release.
    uint64_t recycleFailures = 0;  ///< Resets that threw; session dropped.
    uint64_t acquireWaits = 0;     ///< acquire() calls that had to block.
    size_t live = 0;               ///< Gauge: sessions in existence.
    size_t idle = 0;               ///< Gauge: sessions parked, ready.
};

/**
 * Owns up to maxSessions warm sessions spawned from one shared image.
 */
class SessionPool
{
  public:
    /**
     * @p image must already be validated (snapshot::Image construction
     * does this); the pool keeps a reference for the life of every
     * session.  Seals the CoW RAM backing once (silently absent on
     * hosts without memfd: sessions then spawn with private copies and
     * everything still works, just without page sharing).
     */
    SessionPool(std::shared_ptr<const snapshot::Image> image,
                PoolConfig cfg);
    ~SessionPool();

    SessionPool(const SessionPool &) = delete;
    SessionPool &operator=(const SessionPool &) = delete;

    class Lease;

    /**
     * Checks out a warm session, spawning one if under the cap, else
     * blocking until a release.  @throws anything Session::fromSnapshot
     * throws (first spawn surfaces image/config problems here).
     * Threading: any thread.
     */
    Lease acquire() EXCLUDES(lock_);

    /** The shared parsed image (valid for the pool's lifetime). */
    const snapshot::Image &image() const { return *image_; }

    /** True when guest RAM is CoW-shared (Linux with memfd). */
    bool cowShared() const { return ramImage_ != nullptr; }

    /** Counter snapshot.  Threading: any thread. */
    PoolStats stats() const EXCLUDES(lock_);

  private:
    struct Entry
    {
        uint32_t id = 0;
        std::unique_ptr<rt::Session> session;
    };

    std::shared_ptr<const snapshot::Image> image_;
    PoolConfig cfg_;
    std::shared_ptr<const RamImage> ramImage_;   ///< May be null.

    mutable sim::Mutex lock_;
    sim::CondVar cv_;
    std::vector<std::unique_ptr<Entry>> idle_ GUARDED_BY(lock_);
    size_t live_ GUARDED_BY(lock_) = 0;       ///< Spawned and not dropped.
    size_t spawning_ GUARDED_BY(lock_) = 0;   ///< Spawns in flight.
    uint32_t nextId_ GUARDED_BY(lock_) = 0;
    PoolStats stats_ GUARDED_BY(lock_);

    std::unique_ptr<Entry> spawn(uint32_t id);
    void release(std::unique_ptr<Entry> e) EXCLUDES(lock_);

  public:
    /**
     * RAII checkout.  Movable; destruction recycles the session back
     * into the pool (reset happens on the destroying thread).
     */
    class Lease
    {
      public:
        Lease() = default;
        Lease(Lease &&o) noexcept
            : pool_(o.pool_), entry_(std::move(o.entry_))
        {
            o.pool_ = nullptr;
        }
        Lease &
        operator=(Lease &&o) noexcept
        {
            if (this != &o) {
                reset();
                pool_ = o.pool_;
                entry_ = std::move(o.entry_);
                o.pool_ = nullptr;
            }
            return *this;
        }
        ~Lease() { reset(); }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        explicit operator bool() const { return entry_ != nullptr; }
        rt::Session &session() { return *entry_->session; }
        rt::Session *operator->() { return entry_->session.get(); }

        /** Stable id of the underlying pooled session. */
        uint32_t id() const { return entry_->id; }

      private:
        friend class SessionPool;
        Lease(SessionPool *pool, std::unique_ptr<Entry> e)
            : pool_(pool), entry_(std::move(e))
        {
        }
        void
        reset()
        {
            if (pool_ && entry_)
                pool_->release(std::move(entry_));
            pool_ = nullptr;
            entry_ = nullptr;
        }

        SessionPool *pool_ = nullptr;
        std::unique_ptr<Entry> entry_;
    };
};

} // namespace bifsim::fleet

#endif // BIFSIM_FLEET_SESSION_POOL_H
