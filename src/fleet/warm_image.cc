#include "fleet/warm_image.h"

#include "gpu/gpu.h"
#include "workloads/sgemm_variants.h"

namespace bifsim::fleet {

namespace snap = snapshot;

std::vector<uint8_t>
buildSgemmWarmImage(uint32_t n, size_t ram_bytes, unsigned cores)
{
    if (n == 0 || n % 32 != 0)
        snap::snapshotError("warm image matrix size %u must be a "
                            "nonzero multiple of 32", n);

    rt::SystemConfig cfg;
    cfg.ramBytes = ram_bytes;
    cfg.gpu.numCores = cores;
    // The image is built once and served many times: a single worker
    // with synchronous submission keeps the build deterministic, and
    // serving sessions choose their own host-side knobs at spawn.
    cfg.gpu.hostThreads = 1;
    cfg.gpu.syncSubmit = true;

    rt::Session s(cfg, rt::Mode::FullSystem);

    // Buffer registry indices 0/1/2 = A/B/C, the contract clients and
    // the welcome frame rely on.
    size_t bytes = static_cast<size_t>(n) * n * 4;
    rt::Buffer a = s.alloc(bytes);
    rt::Buffer b = s.alloc(bytes);
    rt::Buffer c = s.alloc(bytes);

    // Kernel function names, not the display names: registry index i
    // holds "sgemm<i+1>" (clients default to index 0, the naive
    // one-thread-per-element variant whose launch geometry is just
    // {n, n} / {8, 8}).
    const char *src = workloads::sgemmVariantsSource();
    std::vector<rt::KernelHandle> kernels;
    size_t variants = workloads::sgemmVariantNames().size();
    for (size_t i = 1; i <= variants; ++i)
        kernels.push_back(s.compile(src, "sgemm" + std::to_string(i)));

    // One throwaway launch (zero matrices, so C stays zero) drives the
    // guest driver through a full submission: GPU page tables for the
    // buffers are installed and the driver's arena state is resident,
    // so serving sessions never pay a first-launch slow path.
    gpu::JobResult r = s.enqueue(
        kernels.front(), rt::NDRange{n, n, 1}, rt::NDRange{8, 8, 1},
        {rt::Arg::buf(a), rt::Arg::buf(b), rt::Arg::buf(c),
         rt::Arg::i32(static_cast<int32_t>(n))});
    if (r.faulted)
        snap::snapshotError("warm image shakedown launch faulted");

    snap::Writer w;
    s.saveSnapshot(w);
    return w.finish();
}

WarmImageInfo
inspectWarmImage(const snap::Image &image)
{
    // Skim the SESS chunk with the same layout Session::restoreFrom
    // parses, keeping only the registries.  Full validation still
    // happens at spawn; this only has to be bounds-safe, which the
    // ChunkReader guarantees.
    snap::ChunkReader c = image.chunk(snap::kTagSession);
    c.u8();            // mode
    c.u64();           // heap
    c.u32();           // gpuVaNext
    c.u64();           // ptRoot
    c.u64();           // ptArena
    c.u64();           // ptArenaEnd
    c.u64();           // descPa
    c.u32();           // descVa
    c.u64();           // argsPa
    c.u32();           // argsVa
    c.u32();           // localArena.gpuVa
    c.u64();           // localArena.pa
    c.u64();           // localArena.bytes
    c.u32();           // localArenaSize
    c.u64();           // driverInstrs
    c.u64();           // mappedPages
    c.u8();            // osBooted

    uint32_t n_maps = c.u32();
    if (static_cast<uint64_t>(n_maps) * 16 > c.remaining())
        c.fail("pending-map count exceeds chunk size");
    for (uint32_t i = 0; i < n_maps; ++i) {
        c.u32();
        c.u32();
        c.u32();
        c.u32();
    }

    gpu::JobResult last;
    gpu::restoreJobResult(c, last);

    WarmImageInfo info;
    uint32_t n_kernels = c.u32();
    for (uint32_t i = 0; i < n_kernels; ++i) {
        info.kernels.push_back(c.str());
        uint32_t bin_len = c.u32();
        if (bin_len > c.remaining())
            c.fail("kernel binary length exceeds chunk size");
        c.raw(bin_len);
        uint32_t n_args = c.u32();
        if (static_cast<uint64_t>(n_args) * 5 > c.remaining())
            c.fail("kernel arg count exceeds chunk size");
        for (uint32_t j = 0; j < n_args; ++j) {
            c.str();
            c.u8();
        }
        c.u32();       // regCount
        c.u32();       // localBytes
        c.u32();       // spills
        c.u32();       // binaryVa
        c.u64();       // binaryPa
    }

    uint32_t n_buffers = c.u32();
    if (static_cast<uint64_t>(n_buffers) * 20 > c.remaining())
        c.fail("buffer count exceeds chunk size");
    for (uint32_t i = 0; i < n_buffers; ++i) {
        c.u32();       // gpuVa
        c.u64();       // pa
        info.bufferBytes.push_back(c.u64());
    }
    c.expectEnd();

    if (!info.bufferBytes.empty()) {
        uint64_t elems = info.bufferBytes[0] / 4;
        uint32_t n = 0;
        while (static_cast<uint64_t>(n + 1) * (n + 1) <= elems)
            ++n;
        info.matrixN = n;
    }
    return info;
}

} // namespace bifsim::fleet
