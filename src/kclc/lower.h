#ifndef BIFSIM_KCLC_LOWER_H
#define BIFSIM_KCLC_LOWER_H

/**
 * @file
 * AST -> LIR lowering with type checking.
 */

#include "kclc/ast.h"
#include "kclc/ir.h"

namespace bifsim::kclc {

/**
 * Lowers one kernel to LIR, performing semantic checks on the way.
 * @throws SimError on any semantic error (undefined variables, type
 *         mismatches, bad builtin usage, ...).
 */
LFunc lower(const Kernel &kernel);

} // namespace bifsim::kclc

#endif // BIFSIM_KCLC_LOWER_H
