#include "kclc/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/logging.h"

namespace bifsim::kclc {

const char *
tokName(Tok kind)
{
    switch (kind) {
      case Tok::End: return "<eof>";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::FloatLit: return "float literal";
      case Tok::KwKernel: return "'kernel'";
      case Tok::KwVoid: return "'void'";
      case Tok::KwInt: return "'int'";
      case Tok::KwUint: return "'uint'";
      case Tok::KwFloat: return "'float'";
      case Tok::KwBool: return "'bool'";
      case Tok::KwGlobal: return "'global'";
      case Tok::KwLocal: return "'local'";
      case Tok::KwConst: return "'const'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwFor: return "'for'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwTrue: return "'true'";
      case Tok::KwFalse: return "'false'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Comma: return "','";
      case Tok::Semi: return "';'";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Bang: return "'!'";
      case Tok::Less: return "'<'";
      case Tok::Greater: return "'>'";
      case Tok::LessEq: return "'<='";
      case Tok::GreaterEq: return "'>='";
      case Tok::EqEq: return "'=='";
      case Tok::BangEq: return "'!='";
      case Tok::AmpAmp: return "'&&'";
      case Tok::PipePipe: return "'||'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::Assign: return "'='";
      case Tok::PlusAssign: return "'+='";
      case Tok::MinusAssign: return "'-='";
      case Tok::StarAssign: return "'*='";
      case Tok::PlusPlus: return "'++'";
      case Tok::MinusMinus: return "'--'";
      case Tok::Question: return "'?'";
      case Tok::Colon: return "':'";
    }
    return "<bad>";
}

std::vector<Token>
lex(const std::string &src)
{
    static const std::map<std::string, Tok> keywords = {
        {"kernel", Tok::KwKernel}, {"__kernel", Tok::KwKernel},
        {"void", Tok::KwVoid},     {"int", Tok::KwInt},
        {"uint", Tok::KwUint},     {"unsigned", Tok::KwUint},
        {"float", Tok::KwFloat},   {"bool", Tok::KwBool},
        {"global", Tok::KwGlobal}, {"__global", Tok::KwGlobal},
        {"local", Tok::KwLocal},   {"__local", Tok::KwLocal},
        {"const", Tok::KwConst},   {"if", Tok::KwIf},
        {"else", Tok::KwElse},     {"for", Tok::KwFor},
        {"while", Tok::KwWhile},   {"return", Tok::KwReturn},
        {"true", Tok::KwTrue},     {"false", Tok::KwFalse},
    };

    std::vector<Token> out;
    size_t i = 0;
    int line = 1;
    size_t n = src.size();

    auto peek = [&](size_t k = 0) -> char {
        return i + k < n ? src[i + k] : '\0';
    };
    auto emit = [&](Tok kind, int adv) {
        Token t;
        t.kind = kind;
        t.line = line;
        out.push_back(t);
        i += adv;
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            line++;
            i++;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            i++;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < n && src[i] != '\n')
                i++;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    line++;
                i++;
            }
            if (i + 1 >= n)
                simError("kcl line %d: unterminated comment", line);
            i += 2;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t j = i;
            while (j < n && (std::isalnum(static_cast<unsigned char>(
                                 src[j])) ||
                             src[j] == '_')) {
                j++;
            }
            std::string word = src.substr(i, j - i);
            Token t;
            t.line = line;
            auto it = keywords.find(word);
            if (it != keywords.end()) {
                t.kind = it->second;
            } else {
                t.kind = Tok::Ident;
                t.text = word;
            }
            out.push_back(t);
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(
                             peek(1))))) {
            size_t j = i;
            bool is_float = false;
            bool is_hex = c == '0' && (peek(1) == 'x' || peek(1) == 'X');
            if (is_hex) {
                j += 2;
                while (j < n && std::isxdigit(static_cast<unsigned char>(
                                    src[j]))) {
                    j++;
                }
            } else {
                while (j < n &&
                       std::isdigit(static_cast<unsigned char>(src[j]))) {
                    j++;
                }
                if (j < n && src[j] == '.') {
                    is_float = true;
                    j++;
                    while (j < n && std::isdigit(
                                        static_cast<unsigned char>(
                                            src[j]))) {
                        j++;
                    }
                }
                if (j < n && (src[j] == 'e' || src[j] == 'E')) {
                    is_float = true;
                    j++;
                    if (j < n && (src[j] == '+' || src[j] == '-'))
                        j++;
                    while (j < n && std::isdigit(
                                        static_cast<unsigned char>(
                                            src[j]))) {
                        j++;
                    }
                }
            }
            std::string num = src.substr(i, j - i);
            Token t;
            t.line = line;
            if (j < n && (src[j] == 'f' || src[j] == 'F')) {
                is_float = true;
                j++;
            } else if (j < n && (src[j] == 'u' || src[j] == 'U')) {
                j++;
            }
            if (is_float) {
                t.kind = Tok::FloatLit;
                t.floatValue = std::strtof(num.c_str(), nullptr);
            } else {
                t.kind = Tok::IntLit;
                t.intValue = std::strtoull(num.c_str(), nullptr, 0);
            }
            out.push_back(t);
            i = j;
            continue;
        }
        switch (c) {
          case '(': emit(Tok::LParen, 1); break;
          case ')': emit(Tok::RParen, 1); break;
          case '{': emit(Tok::LBrace, 1); break;
          case '}': emit(Tok::RBrace, 1); break;
          case '[': emit(Tok::LBracket, 1); break;
          case ']': emit(Tok::RBracket, 1); break;
          case ',': emit(Tok::Comma, 1); break;
          case ';': emit(Tok::Semi, 1); break;
          case '~': emit(Tok::Tilde, 1); break;
          case '^': emit(Tok::Caret, 1); break;
          case '?': emit(Tok::Question, 1); break;
          case ':': emit(Tok::Colon, 1); break;
          case '%': emit(Tok::Percent, 1); break;
          case '/': emit(Tok::Slash, 1); break;
          case '+':
            if (peek(1) == '=')
                emit(Tok::PlusAssign, 2);
            else if (peek(1) == '+')
                emit(Tok::PlusPlus, 2);
            else
                emit(Tok::Plus, 1);
            break;
          case '-':
            if (peek(1) == '=')
                emit(Tok::MinusAssign, 2);
            else if (peek(1) == '-')
                emit(Tok::MinusMinus, 2);
            else
                emit(Tok::Minus, 1);
            break;
          case '*':
            if (peek(1) == '=')
                emit(Tok::StarAssign, 2);
            else
                emit(Tok::Star, 1);
            break;
          case '&':
            emit(peek(1) == '&' ? Tok::AmpAmp : Tok::Amp,
                 peek(1) == '&' ? 2 : 1);
            break;
          case '|':
            emit(peek(1) == '|' ? Tok::PipePipe : Tok::Pipe,
                 peek(1) == '|' ? 2 : 1);
            break;
          case '<':
            if (peek(1) == '=')
                emit(Tok::LessEq, 2);
            else if (peek(1) == '<')
                emit(Tok::Shl, 2);
            else
                emit(Tok::Less, 1);
            break;
          case '>':
            if (peek(1) == '=')
                emit(Tok::GreaterEq, 2);
            else if (peek(1) == '>')
                emit(Tok::Shr, 2);
            else
                emit(Tok::Greater, 1);
            break;
          case '=':
            emit(peek(1) == '=' ? Tok::EqEq : Tok::Assign,
                 peek(1) == '=' ? 2 : 1);
            break;
          case '!':
            emit(peek(1) == '=' ? Tok::BangEq : Tok::Bang,
                 peek(1) == '=' ? 2 : 1);
            break;
          default:
            simError("kcl line %d: unexpected character '%c'", line, c);
        }
    }
    Token end;
    end.kind = Tok::End;
    end.line = line;
    out.push_back(end);
    return out;
}

} // namespace bifsim::kclc
