#ifndef BIFSIM_KCLC_LEXER_H
#define BIFSIM_KCLC_LEXER_H

/**
 * @file
 * Lexer for KCL, the OpenCL-C-like kernel language compiled by kclc.
 * KCL is this project's open stand-in for the paper's vendor OpenCL
 * toolchain: kclc JIT-compiles kernel source to BIF shader binaries at
 * enqueue time, exactly where libOpenCL.so invokes the Mali compiler.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace bifsim::kclc {

/** Token kinds. */
enum class Tok
{
    End, Ident, IntLit, FloatLit,
    // Keywords.
    KwKernel, KwVoid, KwInt, KwUint, KwFloat, KwBool, KwGlobal, KwLocal,
    KwConst, KwIf, KwElse, KwFor, KwWhile, KwReturn, KwTrue, KwFalse,
    // Punctuation / operators.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket, Comma, Semi,
    Plus, Minus, Star, Slash, Percent, Amp, Pipe, Caret, Tilde, Bang,
    Less, Greater, LessEq, GreaterEq, EqEq, BangEq, AmpAmp, PipePipe,
    Shl, Shr, Assign, PlusAssign, MinusAssign, StarAssign, PlusPlus,
    MinusMinus, Question, Colon,
};

/** A lexed token. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;       ///< Identifier spelling.
    uint64_t intValue = 0;  ///< For IntLit.
    float floatValue = 0;   ///< For FloatLit.
    int line = 0;
};

/**
 * Tokenises KCL source.
 * @throws SimError on an unrecognised character or malformed literal.
 */
std::vector<Token> lex(const std::string &source);

/** Human-readable token-kind name for diagnostics. */
const char *tokName(Tok kind);

} // namespace bifsim::kclc

#endif // BIFSIM_KCLC_LEXER_H
