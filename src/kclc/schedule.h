#ifndef BIFSIM_KCLC_SCHEDULE_H
#define BIFSIM_KCLC_SCHEDULE_H

/**
 * @file
 * Clause formation: packs register-allocated LIR into BIF clauses.
 *
 * This stage is where the emulated "compiler versions" of Fig. 1
 * diverge most: clause length, dual-issue pairing and clause-temporary
 * promotion all change the emitted code's instruction counts, empty
 * slots and register-file traffic.
 */

#include "gpu/isa/bif.h"
#include "kclc/ir.h"

namespace bifsim::kclc {

/** Clause-formation knobs (see CompilerOptions presets). */
struct ScheduleOptions
{
    unsigned maxTuples = 8;    ///< Clause length limit (1..8).
    bool pairSlots = true;     ///< Fill both issue slots of a tuple.
    bool dualIssue = false;    ///< Reorder to fill both issue slots.
    bool tempPromote = false;  ///< Promote clause-local values to temps.
};

/**
 * Produces an encodable module from a register-allocated function.
 * Branch targets become clause indices; ROM / local size / barrier
 * metadata are carried over; regCount reflects GRF registers used.
 */
bif::Module schedule(const LFunc &f, const ScheduleOptions &opts);

} // namespace bifsim::kclc

#endif // BIFSIM_KCLC_SCHEDULE_H
