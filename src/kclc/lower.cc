#include "kclc/lower.h"

#include <bit>
#include <cmath>
#include <map>

#include "common/bits.h"
#include "common/logging.h"

namespace bifsim::kclc {

namespace {

using bif::Op;

/** A typed value held in a virtual register. */
struct Value
{
    uint32_t vreg = kNoVReg;
    Type type;
};

/** An assignable location. */
struct LValue
{
    enum class Kind { Var, GlobalMem, LocalMem };

    Kind kind = Kind::Var;
    std::string var;          ///< Var: variable name.
    uint32_t addrVreg = kNoVReg;   ///< Mem: byte address (vreg).
    int32_t addrImm = 0;           ///< Mem: byte offset.
    Scalar elem = Scalar::Int;
};

class Lowering
{
  public:
    explicit Lowering(const Kernel &k) : kernel_(k) {}

    LFunc
    run()
    {
        func_.name = kernel_.name;
        newBlock();

        // Kernel arguments arrive through the job's argument table:
        // one LdArg per parameter (constant reads in the Fig. 12
        // breakdown), loaded in the entry block.
        scopes_.emplace_back();
        for (size_t i = 0; i < kernel_.params.size(); ++i) {
            const Param &p = kernel_.params[i];
            ArgInfo ai;
            ai.name = p.name;
            ai.isBuffer = p.type.isPointer;
            func_.args.push_back(ai);
            uint32_t v = func_.newVReg();
            emit(Op::LdArg, v, LOperand::none(), LOperand::none(),
                 LOperand::none(), static_cast<int32_t>(i));
            declare(p.name, Variable{v, p.type});
        }

        for (const StmtPtr &s : kernel_.body)
            stmt(*s);
        setTerm(TermKind::Return);
        scopes_.pop_back();
        return std::move(func_);
    }

  private:
    struct Variable
    {
        uint32_t vreg;
        Type type;
    };

    struct LocalArray
    {
        uint32_t offset;   ///< Byte offset in local memory.
        Scalar elem;
        uint32_t size;     ///< Element count.
    };

    const Kernel &kernel_;
    LFunc func_;
    uint32_t cur_ = 0;
    bool terminated_ = false;
    std::vector<std::map<std::string, Variable>> scopes_;
    std::map<std::string, LocalArray> localArrays_;
    int line_ = 0;

    [[noreturn]] void
    err(const std::string &msg) const
    {
        simError("kcl line %d: %s", line_, msg.c_str());
    }

    // ------------------------------------------------ block plumbing

    uint32_t
    newBlock()
    {
        func_.blocks.emplace_back();
        cur_ = static_cast<uint32_t>(func_.blocks.size() - 1);
        terminated_ = false;
        return cur_;
    }

    /** Starts a known block (created earlier with reserveBlock). */
    void
    switchTo(uint32_t b)
    {
        cur_ = b;
        terminated_ = false;
    }

    uint32_t
    reserveBlock()
    {
        func_.blocks.emplace_back();
        return static_cast<uint32_t>(func_.blocks.size() - 1);
    }

    void
    emit(Op op, uint32_t dst, LOperand a, LOperand b, LOperand c,
         int32_t imm = 0)
    {
        if (terminated_)
            return;   // Unreachable code after return.
        LInstr in;
        in.op = op;
        in.dst = dst;
        in.src[0] = a;
        in.src[1] = b;
        in.src[2] = c;
        in.imm = imm;
        func_.blocks[cur_].instrs.push_back(in);
    }

    void
    setTerm(TermKind kind, uint32_t cond = kNoVReg, uint32_t t0 = 0,
            uint32_t t1 = 0)
    {
        if (terminated_)
            return;
        LBlock &b = func_.blocks[cur_];
        b.term = kind;
        b.condVreg = cond;
        b.target0 = t0;
        b.target1 = t1;
        terminated_ = true;
    }

    // --------------------------------------------------- symbol table

    void
    declare(const std::string &name, Variable v)
    {
        if (scopes_.back().count(name))
            err("redefinition of '" + name + "'");
        scopes_.back()[name] = v;
    }

    Variable *
    findVar(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        return nullptr;
    }

    // ------------------------------------------------------ constants

    Value
    constInt(int64_t v, Scalar s = Scalar::Int)
    {
        uint32_t dst = func_.newVReg();
        if (fitsSigned(v, 24)) {
            emit(Op::MovImm, dst, LOperand::none(), LOperand::none(),
                 LOperand::none(), static_cast<int32_t>(v));
        } else {
            uint32_t idx = func_.internRom(static_cast<uint32_t>(v));
            emit(Op::LdRom, dst, LOperand::none(), LOperand::none(),
                 LOperand::none(), static_cast<int32_t>(idx));
        }
        return {dst, Type::scalarType(s)};
    }

    Value
    constFloat(float f)
    {
        uint32_t bits = std::bit_cast<uint32_t>(f);
        uint32_t dst = func_.newVReg();
        if (bits == 0) {
            emit(Op::MovImm, dst, LOperand::none(), LOperand::none(),
                 LOperand::none(), 0);
        } else {
            uint32_t idx = func_.internRom(bits);
            emit(Op::LdRom, dst, LOperand::none(), LOperand::none(),
                 LOperand::none(), static_cast<int32_t>(idx));
        }
        return {dst, Type::scalarType(Scalar::Float)};
    }

    // ---------------------------------------------------- conversions

    Value
    convert(Value v, Scalar to)
    {
        Scalar from = v.type.scalar;
        if (v.type.isPointer)
            err("cannot convert pointer value");
        if (from == to)
            return v;
        // Bool is an int 0/1.
        if ((from == Scalar::Bool && (to == Scalar::Int ||
                                      to == Scalar::Uint)) ||
            (from == Scalar::Int && to == Scalar::Uint) ||
            (from == Scalar::Uint && to == Scalar::Int)) {
            v.type = Type::scalarType(to);
            return v;
        }
        uint32_t dst = func_.newVReg();
        if (to == Scalar::Float) {
            emit(from == Scalar::Uint ? Op::U2F : Op::I2F, dst,
                 LOperand::vreg(v.vreg), LOperand::none(),
                 LOperand::none());
            return {dst, Type::scalarType(Scalar::Float)};
        }
        if (from == Scalar::Float &&
            (to == Scalar::Int || to == Scalar::Uint)) {
            emit(to == Scalar::Uint ? Op::F2U : Op::F2I, dst,
                 LOperand::vreg(v.vreg), LOperand::none(),
                 LOperand::none());
            return {dst, Type::scalarType(to)};
        }
        if (to == Scalar::Bool) {
            Value zero = from == Scalar::Float ? constFloat(0.0f)
                                               : constInt(0);
            emit(from == Scalar::Float ? Op::FCmp : Op::ICmp, dst,
                 LOperand::vreg(v.vreg), LOperand::vreg(zero.vreg),
                 LOperand::none(),
                 static_cast<int32_t>(bif::CmpMode::Ne));
            return {dst, Type::scalarType(Scalar::Bool)};
        }
        err("unsupported conversion from " + v.type.str());
    }

    /** Usual arithmetic conversions for a binary operator. */
    Scalar
    promote(Value &a, Value &b)
    {
        if (a.type.isPointer || b.type.isPointer)
            err("pointer arithmetic outside indexing is not supported");
        Scalar sa = a.type.scalar, sb = b.type.scalar;
        if (sa == Scalar::Float || sb == Scalar::Float) {
            a = convert(a, Scalar::Float);
            b = convert(b, Scalar::Float);
            return Scalar::Float;
        }
        if (sa == Scalar::Uint || sb == Scalar::Uint) {
            a = convert(a, Scalar::Uint);
            b = convert(b, Scalar::Uint);
            return Scalar::Uint;
        }
        a = convert(a, Scalar::Int);
        b = convert(b, Scalar::Int);
        return Scalar::Int;
    }

    // ---------------------------------------------------- expressions

    Value
    expr(const Expr &e)
    {
        line_ = e.line;
        switch (e.kind) {
          case ExprKind::IntLit:
            return constInt(static_cast<int64_t>(e.intValue));
          case ExprKind::FloatLit:
            return constFloat(e.floatValue);
          case ExprKind::BoolLit:
            return {constInt(e.intValue ? 1 : 0).vreg,
                    Type::scalarType(Scalar::Bool)};
          case ExprKind::VarRef: {
            Variable *v = findVar(e.name);
            if (!v) {
                if (localArrays_.count(e.name))
                    err("local array '" + e.name +
                        "' used without subscript");
                err("undefined variable '" + e.name + "'");
            }
            return {v->vreg, v->type};
          }
          case ExprKind::Unary: return unary(e);
          case ExprKind::Binary: return binary(e);
          case ExprKind::Assign: return assign(e);
          case ExprKind::Ternary: return ternary(e);
          case ExprKind::Call: return call(e);
          case ExprKind::Index: return load(lvalueOf(e));
          case ExprKind::Cast:
            return convert(expr(*e.children[0]), e.castType.scalar);
          case ExprKind::IncDec: return incDec(e);
        }
        err("bad expression");
    }

    Value
    unary(const Expr &e)
    {
        if (e.op == "+")
            return expr(*e.children[0]);
        Value a = expr(*e.children[0]);
        uint32_t dst = func_.newVReg();
        if (e.op == "-") {
            if (a.type.scalar == Scalar::Float) {
                emit(Op::FNeg, dst, LOperand::vreg(a.vreg),
                     LOperand::none(), LOperand::none());
                return {dst, a.type};
            }
            a = convert(a, a.type.scalar == Scalar::Uint ? Scalar::Uint
                                                         : Scalar::Int);
            emit(Op::ISub, dst, LOperand::special(bif::kSrZero),
                 LOperand::vreg(a.vreg), LOperand::none());
            return {dst, a.type};
        }
        if (e.op == "~") {
            if (a.type.scalar == Scalar::Float)
                err("'~' on float");
            emit(Op::INot, dst, LOperand::vreg(a.vreg), LOperand::none(),
                 LOperand::none());
            return {dst, a.type};
        }
        if (e.op == "!") {
            Value b = convert(a, Scalar::Bool);
            Value zero = constInt(0);
            emit(Op::ICmp, dst, LOperand::vreg(b.vreg),
                 LOperand::vreg(zero.vreg), LOperand::none(),
                 static_cast<int32_t>(bif::CmpMode::Eq));
            return {dst, Type::scalarType(Scalar::Bool)};
        }
        err("bad unary operator '" + e.op + "'");
    }

    Value
    binary(const Expr &e)
    {
        const std::string &op = e.op;
        if (op == "&&" || op == "||")
            return shortCircuit(e);

        Value a = expr(*e.children[0]);
        Value b = expr(*e.children[1]);
        return binaryValues(op, a, b);
    }

    Value
    binaryValues(const std::string &op, Value a, Value b)
    {
        uint32_t dst = func_.newVReg();

        // Comparisons.
        static const std::map<std::string, bif::CmpMode> cmps = {
            {"==", bif::CmpMode::Eq}, {"!=", bif::CmpMode::Ne},
            {"<", bif::CmpMode::Lt},  {"<=", bif::CmpMode::Le},
            {">", bif::CmpMode::Gt},  {">=", bif::CmpMode::Ge},
        };
        if (auto it = cmps.find(op); it != cmps.end()) {
            Scalar s = promote(a, b);
            Op cop = s == Scalar::Float ? Op::FCmp
                   : s == Scalar::Uint ? Op::UCmp : Op::ICmp;
            emit(cop, dst, LOperand::vreg(a.vreg), LOperand::vreg(b.vreg),
                 LOperand::none(), static_cast<int32_t>(it->second));
            return {dst, Type::scalarType(Scalar::Bool)};
        }

        // Shifts keep the left operand's type.
        if (op == "<<" || op == ">>") {
            if (a.type.scalar == Scalar::Float ||
                b.type.scalar == Scalar::Float) {
                err("shift on float");
            }
            b = convert(b, Scalar::Int);
            Op sop = op == "<<" ? Op::IShl
                   : a.type.scalar == Scalar::Uint ? Op::IShr : Op::IAsr;
            emit(sop, dst, LOperand::vreg(a.vreg), LOperand::vreg(b.vreg),
                 LOperand::none());
            return {dst, a.type};
        }

        Scalar s = promote(a, b);
        bool is_f = s == Scalar::Float;
        bool is_u = s == Scalar::Uint;
        Op o;
        if (op == "+")
            o = is_f ? Op::FAdd : Op::IAdd;
        else if (op == "-")
            o = is_f ? Op::FSub : Op::ISub;
        else if (op == "*")
            o = is_f ? Op::FMul : Op::IMul;
        else if (op == "/") {
            if (is_f) {
                // FDiv lowers to reciprocal + multiply (as on Bifrost).
                uint32_t r = func_.newVReg();
                emit(Op::FRcp, r, LOperand::vreg(b.vreg),
                     LOperand::none(), LOperand::none());
                emit(Op::FMul, dst, LOperand::vreg(a.vreg),
                     LOperand::vreg(r), LOperand::none());
                return {dst, Type::scalarType(s)};
            }
            o = is_u ? Op::UDiv : Op::IDiv;
        } else if (op == "%") {
            if (is_f)
                err("'%%' on float");
            o = is_u ? Op::URem : Op::IRem;
        } else if (op == "&") {
            o = Op::IAnd;
        } else if (op == "|") {
            o = Op::IOr;
        } else if (op == "^") {
            o = Op::IXor;
        } else {
            err("bad binary operator '" + op + "'");
        }
        if (is_f && (op == "&" || op == "|" || op == "^"))
            err("bitwise operator on float");
        emit(o, dst, LOperand::vreg(a.vreg), LOperand::vreg(b.vreg),
             LOperand::none());
        return {dst, Type::scalarType(s)};
    }

    Value
    shortCircuit(const Expr &e)
    {
        bool is_and = e.op == "&&";
        uint32_t result = func_.newVReg();

        Value a = convert(expr(*e.children[0]), Scalar::Bool);
        uint32_t rhs_blk = reserveBlock();
        uint32_t skip_blk = reserveBlock();
        uint32_t end_blk = reserveBlock();
        if (is_and) {
            setTerm(TermKind::CondJump, a.vreg, rhs_blk, skip_blk);
        } else {
            setTerm(TermKind::CondJump, a.vreg, skip_blk, rhs_blk);
        }

        switchTo(rhs_blk);
        Value b = convert(expr(*e.children[1]), Scalar::Bool);
        emit(Op::Mov, result, LOperand::vreg(b.vreg), LOperand::none(),
             LOperand::none());
        setTerm(TermKind::Jump, kNoVReg, end_blk);

        switchTo(skip_blk);
        emit(Op::MovImm, result, LOperand::none(), LOperand::none(),
             LOperand::none(), is_and ? 0 : 1);
        setTerm(TermKind::Jump, kNoVReg, end_blk);

        switchTo(end_blk);
        return {result, Type::scalarType(Scalar::Bool)};
    }

    Value
    ternary(const Expr &e)
    {
        // Lowered with control flow so that memory accesses in the arms
        // stay guarded by the condition.
        uint32_t result = func_.newVReg();
        Value c = convert(expr(*e.children[0]), Scalar::Bool);
        uint32_t then_blk = reserveBlock();
        uint32_t else_blk = reserveBlock();
        uint32_t end_blk = reserveBlock();
        setTerm(TermKind::CondJump, c.vreg, then_blk, else_blk);

        switchTo(then_blk);
        Value a = expr(*e.children[1]);

        // Evaluate the other arm first to learn the result type.
        // (Type is decided by promoting both arms; evaluate else arm in
        // its block.)
        uint32_t after_then = cur_;
        switchTo(else_blk);
        Value b = expr(*e.children[2]);
        uint32_t after_else = cur_;

        Scalar s;
        {
            // Promotion without emitting into the wrong block: decide
            // the common type, then convert each arm in its own block.
            Scalar sa = a.type.scalar, sb = b.type.scalar;
            if (a.type.isPointer || b.type.isPointer)
                err("pointer in ternary");
            s = (sa == Scalar::Float || sb == Scalar::Float)
                    ? Scalar::Float
                    : (sa == Scalar::Uint || sb == Scalar::Uint)
                          ? Scalar::Uint
                          : Scalar::Int;
        }

        switchTo(after_then);
        Value ac = convert(a, s);
        emit(Op::Mov, result, LOperand::vreg(ac.vreg), LOperand::none(),
             LOperand::none());
        setTerm(TermKind::Jump, kNoVReg, end_blk);

        switchTo(after_else);
        Value bc = convert(b, s);
        emit(Op::Mov, result, LOperand::vreg(bc.vreg), LOperand::none(),
             LOperand::none());
        setTerm(TermKind::Jump, kNoVReg, end_blk);

        switchTo(end_blk);
        return {result, Type::scalarType(s)};
    }

    Value
    incDec(const Expr &e)
    {
        bool pre = e.op == "++pre" || e.op == "--pre";
        bool inc = e.op == "++pre" || e.op == "post++";
        const Expr &target = *e.children[0];
        if (target.kind != ExprKind::VarRef)
            err("++/-- target must be a variable");
        Variable *v = findVar(target.name);
        if (!v)
            err("undefined variable '" + target.name + "'");
        if (v->type.isPointer || v->type.scalar == Scalar::Float)
            err("++/-- on non-integer");

        uint32_t old = kNoVReg;
        if (!pre) {
            old = func_.newVReg();
            emit(Op::Mov, old, LOperand::vreg(v->vreg), LOperand::none(),
                 LOperand::none());
        }
        Value one = constInt(1);
        emit(inc ? Op::IAdd : Op::ISub, v->vreg, LOperand::vreg(v->vreg),
             LOperand::vreg(one.vreg), LOperand::none());
        return {pre ? v->vreg : old, v->type};
    }

    // --------------------------------------------------------- lvalues

    LValue
    lvalueOf(const Expr &e)
    {
        line_ = e.line;
        if (e.kind == ExprKind::VarRef) {
            if (!findVar(e.name)) {
                err("undefined variable '" + e.name + "'");
            }
            LValue lv;
            lv.kind = LValue::Kind::Var;
            lv.var = e.name;
            return lv;
        }
        if (e.kind != ExprKind::Index)
            err("expression is not assignable");

        const Expr &base = *e.children[0];
        const Expr &index = *e.children[1];
        if (base.kind != ExprKind::VarRef)
            err("subscript base must be a named pointer or local array");

        // Local array?
        auto la = localArrays_.find(base.name);
        if (la != localArrays_.end()) {
            Value idx = convert(expr(index), Scalar::Int);
            Value two = constInt(2);
            uint32_t addr = func_.newVReg();
            emit(Op::IShl, addr, LOperand::vreg(idx.vreg),
                 LOperand::vreg(two.vreg), LOperand::none());
            LValue lv;
            lv.kind = LValue::Kind::LocalMem;
            lv.addrVreg = addr;
            lv.addrImm = static_cast<int32_t>(la->second.offset);
            lv.elem = la->second.elem;
            return lv;
        }

        Variable *v = findVar(base.name);
        if (!v)
            err("undefined variable '" + base.name + "'");
        if (!v->type.isPointer)
            err("subscript on non-pointer '" + base.name + "'");

        Value idx = convert(expr(index), Scalar::Int);
        Value two = constInt(2);
        uint32_t off = func_.newVReg();
        emit(Op::IShl, off, LOperand::vreg(idx.vreg),
             LOperand::vreg(two.vreg), LOperand::none());
        if (v->type.space == AddrSpace::Local) {
            LValue lv;
            lv.kind = LValue::Kind::LocalMem;
            lv.addrVreg = off;
            lv.addrImm = 0;
            lv.elem = v->type.scalar;
            return lv;
        }
        uint32_t addr = func_.newVReg();
        emit(Op::IAdd, addr, LOperand::vreg(v->vreg), LOperand::vreg(off),
             LOperand::none());
        LValue lv;
        lv.kind = LValue::Kind::GlobalMem;
        lv.addrVreg = addr;
        lv.addrImm = 0;
        lv.elem = v->type.scalar;
        return lv;
    }

    Value
    load(const LValue &lv)
    {
        if (lv.kind == LValue::Kind::Var) {
            Variable *v = findVar(lv.var);
            return {v->vreg, v->type};
        }
        uint32_t dst = func_.newVReg();
        emit(lv.kind == LValue::Kind::GlobalMem ? Op::LdGlobal
                                                : Op::LdLocal,
             dst, LOperand::vreg(lv.addrVreg), LOperand::none(),
             LOperand::none(), lv.addrImm);
        return {dst, Type::scalarType(lv.elem)};
    }

    void
    store(const LValue &lv, Value v)
    {
        if (lv.kind == LValue::Kind::Var) {
            Variable *var = findVar(lv.var);
            Value cv = convert(v, var->type.scalar);
            emit(Op::Mov, var->vreg, LOperand::vreg(cv.vreg),
                 LOperand::none(), LOperand::none());
            return;
        }
        Value cv = convert(v, lv.elem);
        emit(lv.kind == LValue::Kind::GlobalMem ? Op::StGlobal
                                                : Op::StLocal,
             kNoVReg, LOperand::vreg(lv.addrVreg), LOperand::vreg(cv.vreg),
             LOperand::none(), lv.addrImm);
    }

    Value
    assign(const Expr &e)
    {
        const Expr &lhs = *e.children[0];
        const Expr &rhs = *e.children[1];
        LValue lv = lvalueOf(lhs);
        Value r;
        if (e.op == "=") {
            r = expr(rhs);
        } else {
            Value cur = load(lv);
            Value b = expr(rhs);
            std::string op(1, e.op[0]);   // "+", "-", "*"
            r = binaryValues(op, cur, b);
        }
        store(lv, r);
        return r;
    }

    // ----------------------------------------------------------- calls

    Value
    call(const Expr &e)
    {
        const std::string &n = e.name;
        auto argc = [&](size_t want) {
            if (e.children.size() != want)
                err(strfmt("%s expects %zu argument(s)", n.c_str(),
                           want));
        };
        auto dim_arg = [&]() -> uint32_t {
            argc(1);
            const Expr &d = *e.children[0];
            if (d.kind != ExprKind::IntLit || d.intValue > 2)
                err(n + " dimension must be a literal 0, 1 or 2");
            return static_cast<uint32_t>(d.intValue);
        };
        auto special2 = [&](uint32_t base, uint32_t d) {
            uint32_t dst = func_.newVReg();
            emit(Op::Mov, dst, LOperand::special(base + d),
                 LOperand::none(), LOperand::none());
            return Value{dst, Type::scalarType(Scalar::Int)};
        };

        if (n == "get_local_id")
            return special2(bif::kSrLocalIdX, dim_arg());
        if (n == "get_group_id")
            return special2(bif::kSrGroupIdX, dim_arg());
        if (n == "get_local_size")
            return special2(bif::kSrLocalSizeX, dim_arg());
        if (n == "get_global_size")
            return special2(bif::kSrGridSizeX, dim_arg());
        if (n == "get_num_groups")
            return special2(bif::kSrNumGroupsX, dim_arg());
        if (n == "get_global_id") {
            uint32_t d = dim_arg();
            // group_id * local_size + local_id
            uint32_t m = func_.newVReg();
            emit(Op::IMul, m, LOperand::special(bif::kSrGroupIdX + d),
                 LOperand::special(bif::kSrLocalSizeX + d),
                 LOperand::none());
            uint32_t dst = func_.newVReg();
            emit(Op::IAdd, dst, LOperand::vreg(m),
                 LOperand::special(bif::kSrLocalIdX + d),
                 LOperand::none());
            return {dst, Type::scalarType(Scalar::Int)};
        }
        if (n == "barrier") {
            // Argument (CLK_LOCAL_MEM_FENCE) optional and ignored.
            func_.usesBarrier = true;
            emit(Op::Barrier, kNoVReg, LOperand::none(), LOperand::none(),
                 LOperand::none());
            return constInt(0);
        }

        // Unary float builtins.
        static const std::map<std::string, Op> f1 = {
            {"sqrt", Op::FSqrt},   {"rsqrt", Op::FRsqrt},
            {"fabs", Op::FAbs},    {"floor", Op::FFloor},
            {"exp2", Op::FExp2},   {"log2", Op::FLog2},
            {"sin", Op::FSin},     {"cos", Op::FCos},
            {"native_recip", Op::FRcp},
        };
        if (auto it = f1.find(n); it != f1.end()) {
            argc(1);
            Value a = convert(expr(*e.children[0]), Scalar::Float);
            uint32_t dst = func_.newVReg();
            emit(it->second, dst, LOperand::vreg(a.vreg), LOperand::none(),
                 LOperand::none());
            return {dst, Type::scalarType(Scalar::Float)};
        }
        if (n == "exp" || n == "log") {
            argc(1);
            Value a = convert(expr(*e.children[0]), Scalar::Float);
            Value k = constFloat(n == "exp" ? 1.4426950408889634f
                                            : 0.6931471805599453f);
            uint32_t dst = func_.newVReg();
            if (n == "exp") {
                uint32_t m = func_.newVReg();
                emit(Op::FMul, m, LOperand::vreg(a.vreg),
                     LOperand::vreg(k.vreg), LOperand::none());
                emit(Op::FExp2, dst, LOperand::vreg(m), LOperand::none(),
                     LOperand::none());
            } else {
                uint32_t m = func_.newVReg();
                emit(Op::FLog2, m, LOperand::vreg(a.vreg),
                     LOperand::none(), LOperand::none());
                emit(Op::FMul, dst, LOperand::vreg(m),
                     LOperand::vreg(k.vreg), LOperand::none());
            }
            return {dst, Type::scalarType(Scalar::Float)};
        }
        if (n == "pow") {
            argc(2);
            Value a = convert(expr(*e.children[0]), Scalar::Float);
            Value b = convert(expr(*e.children[1]), Scalar::Float);
            uint32_t lg = func_.newVReg();
            emit(Op::FLog2, lg, LOperand::vreg(a.vreg), LOperand::none(),
                 LOperand::none());
            uint32_t m = func_.newVReg();
            emit(Op::FMul, m, LOperand::vreg(b.vreg), LOperand::vreg(lg),
                 LOperand::none());
            uint32_t dst = func_.newVReg();
            emit(Op::FExp2, dst, LOperand::vreg(m), LOperand::none(),
                 LOperand::none());
            return {dst, Type::scalarType(Scalar::Float)};
        }
        if (n == "fmin" || n == "fmax" || n == "min" || n == "max") {
            argc(2);
            Value a = expr(*e.children[0]);
            Value b = expr(*e.children[1]);
            Scalar s = promote(a, b);
            Op o;
            if (s == Scalar::Float)
                o = (n == "fmin" || n == "min") ? Op::FMin : Op::FMax;
            else if (s == Scalar::Uint)
                o = (n == "min" || n == "fmin") ? Op::UMin : Op::UMax;
            else
                o = (n == "min" || n == "fmin") ? Op::IMin : Op::IMax;
            uint32_t dst = func_.newVReg();
            emit(o, dst, LOperand::vreg(a.vreg), LOperand::vreg(b.vreg),
                 LOperand::none());
            return {dst, Type::scalarType(s)};
        }
        if (n == "abs") {
            argc(1);
            Value a = expr(*e.children[0]);
            if (a.type.scalar == Scalar::Float) {
                uint32_t dst = func_.newVReg();
                emit(Op::FAbs, dst, LOperand::vreg(a.vreg),
                     LOperand::none(), LOperand::none());
                return {dst, a.type};
            }
            a = convert(a, Scalar::Int);
            uint32_t neg = func_.newVReg();
            emit(Op::ISub, neg, LOperand::special(bif::kSrZero),
                 LOperand::vreg(a.vreg), LOperand::none());
            uint32_t dst = func_.newVReg();
            emit(Op::IMax, dst, LOperand::vreg(a.vreg), LOperand::vreg(neg),
                 LOperand::none());
            return {dst, Type::scalarType(Scalar::Int)};
        }
        if (n == "clamp") {
            argc(3);
            Value x = expr(*e.children[0]);
            Value lo = expr(*e.children[1]);
            Value hi = expr(*e.children[2]);
            Scalar s = promote(x, lo);
            hi = convert(hi, s);
            Op mx = s == Scalar::Float ? Op::FMax
                  : s == Scalar::Uint ? Op::UMax : Op::IMax;
            Op mn = s == Scalar::Float ? Op::FMin
                  : s == Scalar::Uint ? Op::UMin : Op::IMin;
            uint32_t t = func_.newVReg();
            emit(mx, t, LOperand::vreg(x.vreg), LOperand::vreg(lo.vreg),
                 LOperand::none());
            uint32_t dst = func_.newVReg();
            emit(mn, dst, LOperand::vreg(t), LOperand::vreg(hi.vreg),
                 LOperand::none());
            return {dst, Type::scalarType(s)};
        }
        if (n == "atomic_add") {
            argc(2);
            const Expr &ptr = *e.children[0];
            LValue lv = lvalueOf(ptr);
            if (lv.kind == LValue::Kind::Var)
                err("atomic_add needs a memory operand (p[i])");
            Value v = convert(expr(*e.children[1]), Scalar::Int);
            uint32_t dst = func_.newVReg();
            emit(lv.kind == LValue::Kind::GlobalMem ? Op::AtomAddG
                                                    : Op::AtomAddL,
                 dst, LOperand::vreg(lv.addrVreg), LOperand::vreg(v.vreg),
                 LOperand::none(), lv.addrImm);
            return {dst, Type::scalarType(Scalar::Int)};
        }
        if (n == "as_float") {
            argc(1);
            Value a = expr(*e.children[0]);
            return {a.vreg, Type::scalarType(Scalar::Float)};
        }
        if (n == "as_int" || n == "as_uint") {
            argc(1);
            Value a = expr(*e.children[0]);
            return {a.vreg, Type::scalarType(n == "as_int" ? Scalar::Int
                                                           : Scalar::Uint)};
        }
        err("unknown function '" + n + "'");
    }

    // ------------------------------------------------------ statements

    void
    stmt(const Stmt &s)
    {
        line_ = s.line;
        switch (s.kind) {
          case StmtKind::Block:
            scopes_.emplace_back();
            for (const StmtPtr &c : s.body)
                stmt(*c);
            scopes_.pop_back();
            break;
          case StmtKind::Decl: {
            uint32_t v = func_.newVReg();
            if (s.init) {
                Value init = convert(expr(*s.init), s.declType.scalar);
                emit(Op::Mov, v, LOperand::vreg(init.vreg),
                     LOperand::none(), LOperand::none());
            } else {
                emit(Op::MovImm, v, LOperand::none(), LOperand::none(),
                     LOperand::none(), 0);
            }
            declare(s.name, Variable{v, s.declType});
            break;
          }
          case StmtKind::LocalArray: {
            if (localArrays_.count(s.name) || findVar(s.name))
                err("redefinition of '" + s.name + "'");
            LocalArray la;
            la.offset = func_.localBytes;
            la.elem = s.declType.scalar;
            la.size = s.arraySize;
            localArrays_[s.name] = la;
            func_.localBytes += s.arraySize * 4;
            break;
          }
          case StmtKind::ExprStmt:
            expr(*s.expr);
            break;
          case StmtKind::Return:
            setTerm(TermKind::Return);
            newBlock();   // Subsequent code is unreachable but parsed.
            break;
          case StmtKind::If: {
            Value c = convert(expr(*s.expr), Scalar::Bool);
            uint32_t then_blk = reserveBlock();
            uint32_t else_blk = s.elseStmt ? reserveBlock() : 0;
            uint32_t end_blk = reserveBlock();
            setTerm(TermKind::CondJump, c.vreg, then_blk,
                    s.elseStmt ? else_blk : end_blk);
            switchTo(then_blk);
            stmt(*s.thenStmt);
            setTerm(TermKind::Jump, kNoVReg, end_blk);
            if (s.elseStmt) {
                switchTo(else_blk);
                stmt(*s.elseStmt);
                setTerm(TermKind::Jump, kNoVReg, end_blk);
            }
            switchTo(end_blk);
            break;
          }
          case StmtKind::While: {
            uint32_t cond_blk = reserveBlock();
            uint32_t body_blk = reserveBlock();
            uint32_t end_blk = reserveBlock();
            setTerm(TermKind::Jump, kNoVReg, cond_blk);
            switchTo(cond_blk);
            Value c = convert(expr(*s.expr), Scalar::Bool);
            setTerm(TermKind::CondJump, c.vreg, body_blk, end_blk);
            switchTo(body_blk);
            stmt(*s.thenStmt);
            setTerm(TermKind::Jump, kNoVReg, cond_blk);
            switchTo(end_blk);
            break;
          }
          case StmtKind::For: {
            scopes_.emplace_back();
            if (s.initStmt)
                stmt(*s.initStmt);
            uint32_t cond_blk = reserveBlock();
            uint32_t body_blk = reserveBlock();
            uint32_t end_blk = reserveBlock();
            setTerm(TermKind::Jump, kNoVReg, cond_blk);
            switchTo(cond_blk);
            if (s.expr) {
                Value c = convert(expr(*s.expr), Scalar::Bool);
                setTerm(TermKind::CondJump, c.vreg, body_blk, end_blk);
            } else {
                setTerm(TermKind::Jump, kNoVReg, body_blk);
            }
            switchTo(body_blk);
            stmt(*s.thenStmt);
            if (s.stepExpr)
                expr(*s.stepExpr);
            setTerm(TermKind::Jump, kNoVReg, cond_blk);
            switchTo(end_blk);
            scopes_.pop_back();
            break;
          }
        }
    }
};

} // namespace

LFunc
lower(const Kernel &kernel)
{
    Lowering lo(kernel);
    return lo.run();
}

std::string
dumpFunc(const LFunc &f)
{
    std::string s = "func " + f.name + "\n";
    auto operand = [](const LOperand &o) -> std::string {
        switch (o.kind) {
          case LOperand::Kind::None: return "-";
          case LOperand::Kind::VReg: return strfmt("v%u", o.idx);
          case LOperand::Kind::Special: return strfmt("sr%u", o.idx);
        }
        return "?";
    };
    for (size_t b = 0; b < f.blocks.size(); ++b) {
        const LBlock &blk = f.blocks[b];
        s += strfmt("  b%zu:\n", b);
        for (const LInstr &in : blk.instrs) {
            s += strfmt("    %s", bif::opName(in.op));
            if (in.dst != kNoVReg)
                s += strfmt(" v%u,", in.dst);
            for (const LOperand &o : in.src) {
                if (o.kind != LOperand::Kind::None)
                    s += " " + operand(o);
            }
            s += strfmt(" imm=%d\n", in.imm);
        }
        switch (blk.term) {
          case TermKind::Jump:
            s += strfmt("    jump b%u\n", blk.target0);
            break;
          case TermKind::CondJump:
            s += strfmt("    condjump v%u ? b%u : b%u\n", blk.condVreg,
                        blk.target0, blk.target1);
            break;
          case TermKind::Return:
            s += "    return\n";
            break;
        }
    }
    return s;
}

} // namespace bifsim::kclc
