#ifndef BIFSIM_KCLC_PARSER_H
#define BIFSIM_KCLC_PARSER_H

/**
 * @file
 * Recursive-descent parser for KCL.
 */

#include "kclc/ast.h"

namespace bifsim::kclc {

/**
 * Parses KCL source into an AST.
 * @throws SimError with line information on any syntax error.
 */
Unit parse(const std::string &source);

} // namespace bifsim::kclc

#endif // BIFSIM_KCLC_PARSER_H
