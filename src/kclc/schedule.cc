#include "kclc/schedule.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/logging.h"

namespace bifsim::kclc {

namespace {

using bif::Instr;
using bif::Op;
using bif::Tuple;

/** Converts an allocated LIR operand to a BIF operand byte. */
uint8_t
operandByte(const LOperand &o)
{
    switch (o.kind) {
      case LOperand::Kind::None:
        return bif::kOperandNone;
      case LOperand::Kind::VReg:
        if (o.idx >= bif::kNumGrfRegs)
            simError("kclc: unallocated vreg reached the scheduler");
        return static_cast<uint8_t>(o.idx);
      case LOperand::Kind::Special:
        return static_cast<uint8_t>(o.idx);
    }
    return bif::kOperandNone;
}

Instr
toInstr(const LInstr &in)
{
    Instr b;
    b.op = in.op;
    b.dst = in.dst == kNoVReg ? bif::kOperandNone
                              : static_cast<uint8_t>(in.dst);
    b.src0 = operandByte(in.src[0]);
    b.src1 = operandByte(in.src[1]);
    b.src2 = operandByte(in.src[2]);
    b.imm = in.imm;
    return b;
}

/** Per-block GRF liveness on the allocated function. */
std::vector<std::set<uint8_t>>
grfLiveOut(const LFunc &f)
{
    size_t nb = f.blocks.size();
    std::vector<std::set<uint8_t>> use(nb), def(nb), in(nb), out(nb);
    for (size_t b = 0; b < nb; ++b) {
        for (const LInstr &i : f.blocks[b].instrs) {
            for (const LOperand &o : i.src) {
                if (o.kind == LOperand::Kind::VReg &&
                    !def[b].count(static_cast<uint8_t>(o.idx))) {
                    use[b].insert(static_cast<uint8_t>(o.idx));
                }
            }
            if (i.dst != kNoVReg)
                def[b].insert(static_cast<uint8_t>(i.dst));
        }
        const LBlock &blk = f.blocks[b];
        if (blk.term == TermKind::CondJump &&
            !def[b].count(static_cast<uint8_t>(blk.condVreg))) {
            use[b].insert(static_cast<uint8_t>(blk.condVreg));
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = nb; b-- > 0;) {
            const LBlock &blk = f.blocks[b];
            std::set<uint8_t> o;
            auto succ = [&](uint32_t s) {
                if (s < nb)
                    o.insert(in[s].begin(), in[s].end());
            };
            if (blk.term == TermKind::Jump) {
                succ(blk.target0);
            } else if (blk.term == TermKind::CondJump) {
                succ(blk.target0);
                succ(blk.target1);
            }
            std::set<uint8_t> i2 = use[b];
            for (uint8_t v : o) {
                if (!def[b].count(v))
                    i2.insert(v);
            }
            if (o != out[b] || i2 != in[b]) {
                out[b] = std::move(o);
                in[b] = std::move(i2);
                changed = true;
            }
        }
    }
    return out;
}

/** The clause builder for one function. */
class Scheduler
{
  public:
    Scheduler(const LFunc &f, const ScheduleOptions &opts)
        : f_(f), opts_(opts)
    {
    }

    bif::Module
    run()
    {
        liveOut_ = grfLiveOut(f_);
        size_t nb = f_.blocks.size();
        blockFirst_.assign(nb + 1, 0);

        for (size_t b = 0; b < nb; ++b) {
            blockFirst_[b] = clauses_.size();
            curBlock_ = static_cast<uint32_t>(b);
            emitBlock(f_.blocks[b], b);
        }
        blockFirst_[nb] = clauses_.size();

        // Patch branch targets from block ids to clause indices.
        for (const Fixup &fx : fixups_) {
            Instr &in =
                clauses_[fx.clause].tuples[fx.tuple].slot[fx.slot];
            in.imm = static_cast<int32_t>(blockFirst_[fx.target]);
        }

        if (opts_.tempPromote)
            promoteTemps();

        bif::Module mod;
        mod.clauses.reserve(clauses_.size());
        for (BuiltClause &c : clauses_) {
            bif::Clause cl;
            cl.tuples = std::move(c.tuples);
            mod.clauses.push_back(std::move(cl));
        }
        mod.rom = f_.rom;
        mod.localBytes = f_.localBytes;
        mod.usesBarrier = f_.usesBarrier;
        uint32_t max_reg = 0;
        bool any_reg = false;
        for (const bif::Clause &cl : mod.clauses) {
            for (const Tuple &t : cl.tuples) {
                for (const Instr &in : t.slot) {
                    for (uint8_t r : {in.dst, in.src0, in.src1, in.src2}) {
                        if (bif::isGrf(r) &&
                            !(in.op == Op::Nop)) {
                            max_reg = std::max<uint32_t>(max_reg, r);
                            any_reg = true;
                        }
                    }
                }
            }
        }
        mod.regCount = any_reg ? max_reg + 1 : 0;
        return mod;
    }

  private:
    struct BuiltClause
    {
        std::vector<Tuple> tuples;
        uint32_t block = 0;   ///< Owning basic block.
    };

    struct Fixup
    {
        size_t clause;
        size_t tuple;
        int slot;
        uint32_t target;
    };

    const LFunc &f_;
    ScheduleOptions opts_;
    std::vector<std::set<uint8_t>> liveOut_;
    std::vector<BuiltClause> clauses_;
    std::vector<size_t> blockFirst_;
    std::vector<Fixup> fixups_;
    uint32_t curBlock_ = 0;

    std::vector<Tuple> cur_;

    void
    flush()
    {
        if (cur_.empty())
            return;
        BuiltClause c;
        c.tuples = std::move(cur_);
        c.block = curBlock_;
        cur_.clear();
        clauses_.push_back(std::move(c));
    }

    /** Appends @p in while respecting slot legality and clause length. */
    void
    place(const Instr &in)
    {
        bool s1_ok = opts_.pairSlots && bif::legalInSlot1(in.op);
        if (!cur_.empty()) {
            Tuple &last = cur_.back();
            if (last.slot[1].op == Op::Nop && s1_ok &&
                last.slot[0].op != Op::Nop) {
                last.slot[1] = in;
                return;
            }
        }
        if (cur_.size() == opts_.maxTuples)
            flush();
        Tuple t;
        if (bif::legalInSlot0(in.op))
            t.slot[0] = in;
        else
            t.slot[1] = in;
        cur_.push_back(t);
    }

    /** Places a control-flow instruction: final tuple, slot 1;
     *  ends the clause.  Returns its location for fixups. */
    Fixup
    placeCf(const Instr &in)
    {
        if (!cur_.empty() && cur_.back().slot[1].op == Op::Nop &&
            cur_.back().slot[0].op != Op::Nop) {
            cur_.back().slot[1] = in;
        } else {
            if (cur_.size() == opts_.maxTuples)
                flush();
            Tuple t;
            t.slot[1] = in;
            cur_.push_back(t);
        }
        Fixup fx;
        fx.clause = clauses_.size();
        fx.tuple = cur_.size() - 1;
        fx.slot = 1;
        fx.target = 0;
        flush();
        return fx;
    }

    void
    emitSequential(const std::vector<LInstr> &instrs)
    {
        for (const LInstr &li : instrs) {
            if (li.op == Op::Barrier) {
                flush();
                Tuple t;
                t.slot[1] = toInstr(li);
                cur_.push_back(t);
                flush();
                continue;
            }
            place(toInstr(li));
        }
    }

    /** Greedy dual-issue list scheduling within a block. */
    void
    emitDualIssue(const std::vector<LInstr> &instrs)
    {
        size_t n = instrs.size();
        std::vector<std::vector<size_t>> succs(n);
        std::vector<unsigned> preds(n, 0);

        // Dependence edges: RAW/WAR/WAW on registers, total order on
        // memory operations and barriers.
        std::map<uint8_t, size_t> last_writer;
        std::map<uint8_t, std::vector<size_t>> readers_since_write;
        size_t last_mem = SIZE_MAX;
        auto add_edge = [&](size_t from, size_t to) {
            if (from == to)
                return;
            succs[from].push_back(to);
            preds[to]++;
        };
        for (size_t i = 0; i < n; ++i) {
            const LInstr &li = instrs[i];
            for (const LOperand &o : li.src) {
                if (o.kind != LOperand::Kind::VReg)
                    continue;
                uint8_t r = static_cast<uint8_t>(o.idx);
                auto w = last_writer.find(r);
                if (w != last_writer.end())
                    add_edge(w->second, i);   // RAW
                readers_since_write[r].push_back(i);
            }
            if (li.dst != kNoVReg) {
                uint8_t r = static_cast<uint8_t>(li.dst);
                auto w = last_writer.find(r);
                if (w != last_writer.end())
                    add_edge(w->second, i);   // WAW
                for (size_t rd : readers_since_write[r])
                    add_edge(rd, i);          // WAR
                readers_since_write[r].clear();
                last_writer[r] = i;
            }
            if (bif::isMemoryOp(li.op) || li.op == Op::Barrier) {
                if (last_mem != SIZE_MAX)
                    add_edge(last_mem, i);
                last_mem = i;
            }
        }

        std::vector<bool> done(n, false);
        size_t remaining = n;
        while (remaining > 0) {
            // First ready instruction legal in slot 0.
            size_t pick0 = SIZE_MAX, pick1 = SIZE_MAX;
            for (size_t i = 0; i < n && pick0 == SIZE_MAX; ++i) {
                if (!done[i] && preds[i] == 0 &&
                    instrs[i].op != Op::Barrier &&
                    bif::legalInSlot0(instrs[i].op)) {
                    pick0 = i;
                }
            }
            // A companion for slot 1.  Within a tuple, slot 0's result
            // forwards to slot 1 (the FMA->ADD chaining of the Bifrost
            // pipeline), so direct dependents of pick0 are eligible:
            // treat pick0 as retired while searching.
            std::vector<unsigned> preds2(preds);
            if (pick0 != SIZE_MAX) {
                for (size_t s : succs[pick0])
                    preds2[s]--;
            }
            for (size_t i = 0; i < n && pick1 == SIZE_MAX; ++i) {
                if (done[i] || preds2[i] != 0)
                    continue;
                if (i == pick0 ||
                    instrs[i].op == Op::Barrier ||
                    !bif::legalInSlot1(instrs[i].op)) {
                    continue;
                }
                pick1 = i;
            }

            if (pick0 == SIZE_MAX && pick1 == SIZE_MAX) {
                // Only a barrier (or nothing) is ready.
                size_t bar = SIZE_MAX;
                for (size_t i = 0; i < n; ++i) {
                    if (!done[i] && preds[i] == 0) {
                        bar = i;
                        break;
                    }
                }
                if (bar == SIZE_MAX)
                    simError("kclc: scheduler deadlock");
                flush();
                Tuple t;
                t.slot[1] = toInstr(instrs[bar]);
                cur_.push_back(t);
                flush();
                done[bar] = true;
                remaining--;
                for (size_t s : succs[bar])
                    preds[s]--;
                continue;
            }

            if (cur_.size() == opts_.maxTuples)
                flush();
            Tuple t;
            auto retire = [&](size_t i) {
                done[i] = true;
                remaining--;
                for (size_t s : succs[i])
                    preds[s]--;
            };
            if (pick0 != SIZE_MAX) {
                t.slot[0] = toInstr(instrs[pick0]);
                retire(pick0);
            }
            if (pick1 != SIZE_MAX) {
                t.slot[1] = toInstr(instrs[pick1]);
                retire(pick1);
            }
            cur_.push_back(t);
        }
    }

    void
    emitBlock(const LBlock &blk, size_t index)
    {
        if (opts_.dualIssue)
            emitDualIssue(blk.instrs);
        else
            emitSequential(blk.instrs);

        size_t next = index + 1;
        switch (blk.term) {
          case TermKind::Return: {
            Instr ret;
            ret.op = Op::Ret;
            placeCf(ret);   // Returns a fixup slot, but Ret needs none.
            break;
          }
          case TermKind::Jump:
            if (blk.target0 == next) {
                flush();   // Fall through.
            } else {
                Instr br;
                br.op = Op::Branch;
                Fixup fx = placeCf(br);
                fx.target = blk.target0;
                fixups_.push_back(fx);
            }
            break;
          case TermKind::CondJump: {
            uint32_t t = blk.target0, e = blk.target1;
            uint8_t cond = static_cast<uint8_t>(blk.condVreg);
            if (t == next && e == next) {
                flush();
                break;
            }
            if (t == next) {
                // Invert: branch to else when cond == 0.
                Instr br;
                br.op = Op::BranchZ;
                br.src0 = cond;
                Fixup fx = placeCf(br);
                fx.target = e;
                fixups_.push_back(fx);
                break;
            }
            Instr br;
            br.op = Op::BranchNZ;
            br.src0 = cond;
            Fixup fx = placeCf(br);
            fx.target = t;
            fixups_.push_back(fx);
            if (e != next) {
                Instr br2;
                br2.op = Op::Branch;
                Fixup fx2 = placeCf(br2);
                fx2.target = e;
                fixups_.push_back(fx2);
            }
            break;
          }
        }
    }

    // ------------------------------------------------ temp promotion

    struct SlotRef
    {
        size_t clause;
        size_t tuple;
        int slot;
    };

    /** Rewrites clause-local GRF values to temporary registers
     *  (paper Fig. 4b: temp registers reduce GRF accesses). */
    void
    promoteTemps()
    {
        for (size_t c = 0; c < clauses_.size(); ++c) {
            BuiltClause &cl = clauses_[c];
            // Flat instruction view of this clause.
            std::vector<Instr *> flat;
            for (Tuple &t : cl.tuples) {
                flat.push_back(&t.slot[0]);
                flat.push_back(&t.slot[1]);
            }
            unsigned next_temp = 0;
            for (size_t i = 0; i < flat.size(); ++i) {
                Instr &def = *flat[i];
                if (def.op == Op::Nop || !bif::isGrf(def.dst))
                    continue;
                if (next_temp >= bif::kNumTempRegs)
                    break;
                uint8_t g = def.dst;

                // Collect uses until redefinition within the clause.
                std::vector<std::pair<size_t, int>> uses;
                bool redefined = false;
                for (size_t j = i + 1; j < flat.size(); ++j) {
                    Instr &in = *flat[j];
                    if (in.op == Op::Nop)
                        continue;
                    for (int s = 0; s < 3; ++s) {
                        uint8_t *src = s == 0 ? &in.src0
                                     : s == 1 ? &in.src1 : &in.src2;
                        if (*src == g)
                            uses.push_back({j, s});
                    }
                    if (in.dst == g) {
                        redefined = true;
                        break;
                    }
                }
                if (!redefined &&
                    !deadAfterClause(c, g)) {
                    continue;
                }

                uint8_t temp = static_cast<uint8_t>(
                    bif::kOperandTemp0 + next_temp++);
                def.dst = temp;
                for (auto [j, s] : uses) {
                    Instr &in = *flat[j];
                    if (s == 0)
                        in.src0 = temp;
                    else if (s == 1)
                        in.src1 = temp;
                    else
                        in.src2 = temp;
                }
            }
        }
    }

    /** True if GRF @p g is not consumed after clause @p c. */
    bool
    deadAfterClause(size_t c, uint8_t g)
    {
        uint32_t block = clauses_[c].block;
        for (size_t k = c + 1;
             k < clauses_.size() && clauses_[k].block == block; ++k) {
            for (const Tuple &t : clauses_[k].tuples) {
                for (const Instr &in : t.slot) {
                    if (in.op == Op::Nop)
                        continue;
                    if (in.src0 == g || in.src1 == g || in.src2 == g)
                        return false;   // Read downstream.
                    if (in.dst == g)
                        return true;    // Redefined first.
                }
            }
        }
        return liveOut_[block].count(g) == 0;
    }
};

} // namespace

bif::Module
schedule(const LFunc &f, const ScheduleOptions &opts)
{
    Scheduler s(f, opts);
    return s.run();
}

} // namespace bifsim::kclc
