#include "kclc/compiler.h"

#include "analysis/analysis.h"
#include "common/logging.h"
#include "kclc/lower.h"
#include "kclc/parser.h"
#include "kclc/passes.h"
#include "kclc/regalloc.h"
#include "kclc/schedule.h"

namespace bifsim::kclc {

CompilerOptions
CompilerOptions::forLevel(int level)
{
    CompilerOptions o;
    switch (level) {
      case 0:
        o.maxTuples = 1;
        o.pairSlots = false;
        o.constFold = o.cse = o.tempPromote = o.dualIssue = false;
        o.versionName = "5.6";
        break;
      case 1:
        o.maxTuples = 4;
        o.constFold = true;
        o.cse = o.tempPromote = o.dualIssue = false;
        o.versionName = "5.7";
        break;
      case 2:
        o.maxTuples = 8;
        o.constFold = o.cse = o.tempPromote = true;
        o.dualIssue = false;
        o.versionName = "6.0";
        break;
      default:
        o.maxTuples = 8;
        o.constFold = o.cse = o.tempPromote = o.dualIssue = true;
        o.versionName = "6.1";
        break;
    }
    return o;
}

CompilerOptions
CompilerOptions::forVersion(const std::string &version)
{
    if (version == "5.6")
        return forLevel(0);
    if (version == "5.7")
        return forLevel(1);
    if (version == "6.0")
        return forLevel(2);
    if (version == "6.1" || version == "6.2") {
        CompilerOptions o = forLevel(3);
        o.versionName = version;
        return o;
    }
    simError("kclc: unknown compiler version '%s'", version.c_str());
}

namespace {

CompiledKernel
compileOne(const Kernel &k, const CompilerOptions &opts)
{
    LFunc f = lower(k);

    removeUnreachable(f);
    if (opts.constFold)
        constFold(f);
    if (opts.cse) {
        cse(f);
        copyProp(f);
    }
    if (opts.constFold || opts.cse)
        deadCodeElim(f);

    AllocResult alloc = allocateRegisters(f);

    ScheduleOptions so;
    so.maxTuples = opts.maxTuples;
    so.pairSlots = opts.pairSlots;
    so.dualIssue = opts.dualIssue;
    so.tempPromote = opts.tempPromote;
    bif::Module mod = schedule(f, so);

    std::string verr = bif::validate(mod);
    if (!verr.empty())
        panic("kclc produced an invalid module: %s", verr.c_str());

    // Self-check: the static analyzer must find no error-severity
    // defect in our own output, at every optimisation level.
    analysis::Result ares = analysis::analyze(mod);
    if (ares.hasErrors()) {
        std::string msg;
        for (const analysis::Diag &d : ares.diags) {
            if (d.sev == analysis::Severity::Error)
                msg += "\n  " + analysis::renderDiag(d);
        }
        simError("kclc miscompiled '%s' (analyzer findings):%s",
                 k.name.c_str(), msg.c_str());
    }

    CompiledKernel out;
    out.name = k.name;
    out.binary = bif::encode(mod);
    out.args = f.args;
    out.regCount = mod.regCount;
    out.localBytes = mod.localBytes;
    out.spills = alloc.spills;
    out.mod = std::move(mod);
    return out;
}

} // namespace

CompiledKernel
compileKernel(const std::string &source, const std::string &kernel_name,
              const CompilerOptions &opts)
{
    Unit u = parse(source);
    const Kernel *k = u.find(kernel_name);
    if (!k)
        simError("kclc: no kernel named '%s'", kernel_name.c_str());
    return compileOne(*k, opts);
}

std::vector<CompiledKernel>
compileAll(const std::string &source, const CompilerOptions &opts)
{
    Unit u = parse(source);
    std::vector<CompiledKernel> out;
    out.reserve(u.kernels.size());
    for (const Kernel &k : u.kernels)
        out.push_back(compileOne(k, opts));
    return out;
}

} // namespace bifsim::kclc
