#ifndef BIFSIM_KCLC_REGALLOC_H
#define BIFSIM_KCLC_REGALLOC_H

/**
 * @file
 * Linear-scan register allocation onto the 64-entry BIF GRF.
 *
 * Intervals are computed from block-level liveness (so loop-carried
 * values stay live across back edges).  When pressure exceeds the
 * register file, the longest-lived intervals are spilled to local
 * memory through reserved scratch registers — adding the local
 * load/store traffic a real shader compiler would.
 */

#include "kclc/ir.h"

namespace bifsim::kclc {

/** Allocation outcome. */
struct AllocResult
{
    uint32_t regCount = 0;   ///< Registers used (max index + 1).
    uint32_t spills = 0;     ///< Number of spilled virtual registers.
};

/**
 * Rewrites @p f in place: every LOperand::VReg index becomes a GRF
 * register number (< bif::kNumGrfRegs), and CondJump condVreg values
 * become GRF numbers too.
 *
 * @throws SimError if the function cannot be allocated even with
 *         spilling (pathological input).
 */
AllocResult allocateRegisters(LFunc &f);

} // namespace bifsim::kclc

#endif // BIFSIM_KCLC_REGALLOC_H
