#include "kclc/regalloc.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/logging.h"

namespace bifsim::kclc {

namespace {

using bif::Op;

constexpr unsigned kNumScratch = 3;

struct Interval
{
    uint32_t vreg;
    uint32_t start;
    uint32_t end;
};

/** Per-block liveness over virtual registers. */
struct Liveness
{
    std::vector<std::set<uint32_t>> liveIn;
    std::vector<std::set<uint32_t>> liveOut;
};

Liveness
computeLiveness(const LFunc &f)
{
    size_t nb = f.blocks.size();
    std::vector<std::set<uint32_t>> use(nb), def(nb);
    for (size_t b = 0; b < nb; ++b) {
        const LBlock &blk = f.blocks[b];
        for (const LInstr &in : blk.instrs) {
            for (const LOperand &o : in.src) {
                if (o.kind == LOperand::Kind::VReg && !def[b].count(o.idx))
                    use[b].insert(o.idx);
            }
            if (in.dst != kNoVReg)
                def[b].insert(in.dst);
        }
        if (blk.term == TermKind::CondJump &&
            !def[b].count(blk.condVreg)) {
            use[b].insert(blk.condVreg);
        }
    }

    Liveness lv;
    lv.liveIn.resize(nb);
    lv.liveOut.resize(nb);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = nb; i-- > 0;) {
            const LBlock &blk = f.blocks[i];
            std::set<uint32_t> out;
            auto add_succ = [&](uint32_t s) {
                if (s < nb)
                    out.insert(lv.liveIn[s].begin(), lv.liveIn[s].end());
            };
            if (blk.term == TermKind::Jump) {
                add_succ(blk.target0);
            } else if (blk.term == TermKind::CondJump) {
                add_succ(blk.target0);
                add_succ(blk.target1);
            }
            std::set<uint32_t> in = use[i];
            for (uint32_t v : out) {
                if (!def[i].count(v))
                    in.insert(v);
            }
            if (out != lv.liveOut[i] || in != lv.liveIn[i]) {
                lv.liveOut[i] = std::move(out);
                lv.liveIn[i] = std::move(in);
                changed = true;
            }
        }
    }
    return lv;
}

/** Computes conservative live intervals over a global position order. */
std::vector<Interval>
computeIntervals(const LFunc &f, const Liveness &lv)
{
    std::map<uint32_t, Interval> iv;
    auto touch = [&](uint32_t v, uint32_t pos) {
        auto [it, fresh] = iv.try_emplace(v, Interval{v, pos, pos});
        if (!fresh) {
            it->second.start = std::min(it->second.start, pos);
            it->second.end = std::max(it->second.end, pos);
        }
    };

    uint32_t pos = 0;
    for (size_t b = 0; b < f.blocks.size(); ++b) {
        uint32_t block_start = pos;
        for (uint32_t v : lv.liveIn[b])
            touch(v, block_start);
        const LBlock &blk = f.blocks[b];
        for (const LInstr &in : blk.instrs) {
            for (const LOperand &o : in.src) {
                if (o.kind == LOperand::Kind::VReg)
                    touch(o.idx, pos);
            }
            if (in.dst != kNoVReg)
                touch(in.dst, pos);
            pos++;
        }
        if (blk.term == TermKind::CondJump)
            touch(blk.condVreg, pos);
        pos++;   // Terminator position.
        uint32_t block_end = pos;
        for (uint32_t v : lv.liveOut[b])
            touch(v, block_end);
    }

    std::vector<Interval> out;
    out.reserve(iv.size());
    for (const auto &[v, i] : iv)
        out.push_back(i);
    std::sort(out.begin(), out.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start;
              });
    return out;
}

/** Linear scan; returns false and fills @p to_spill on overflow. */
bool
scan(const std::vector<Interval> &intervals, unsigned num_regs,
     std::map<uint32_t, uint32_t> &assignment,
     std::set<uint32_t> &to_spill)
{
    std::vector<Interval> active;   // Sorted by end.
    std::set<uint32_t> free_regs;
    for (unsigned r = 0; r < num_regs; ++r)
        free_regs.insert(r);

    bool ok = true;
    for (const Interval &cur : intervals) {
        // Expire.
        for (auto it = active.begin(); it != active.end();) {
            if (it->end < cur.start) {
                free_regs.insert(assignment.at(it->vreg));
                it = active.erase(it);
            } else {
                ++it;
            }
        }
        if (free_regs.empty()) {
            // Spill the active interval with the furthest end (or the
            // current one if it lives longest).
            auto furthest =
                std::max_element(active.begin(), active.end(),
                                 [](const Interval &a, const Interval &b) {
                                     return a.end < b.end;
                                 });
            if (furthest != active.end() && furthest->end > cur.end) {
                to_spill.insert(furthest->vreg);
                free_regs.insert(assignment.at(furthest->vreg));
                assignment.erase(furthest->vreg);
                active.erase(furthest);
            } else {
                to_spill.insert(cur.vreg);
                ok = false;
                continue;
            }
            ok = false;
        }
        uint32_t r = *free_regs.begin();
        free_regs.erase(free_regs.begin());
        assignment[cur.vreg] = r;
        active.push_back(cur);
    }
    return ok;
}

/** Rewrites spilled vregs through scratch registers + local memory. */
void
rewriteSpills(LFunc &f, const std::set<uint32_t> &spilled,
              unsigned scratch_base)
{
    // Assign a local-memory slot per spilled vreg.
    std::map<uint32_t, uint32_t> slot;
    for (uint32_t v : spilled) {
        slot[v] = f.localBytes;
        f.localBytes += 4;
    }

    for (LBlock &blk : f.blocks) {
        std::vector<LInstr> out;
        out.reserve(blk.instrs.size() * 2);
        for (LInstr in : blk.instrs) {
            unsigned next_scratch = 0;
            // Reload spilled sources.  A "spill register" here is a
            // fresh vreg pinned later to the scratch GRF range; we use
            // dedicated high vreg ids to avoid interfering with scan.
            for (LOperand &o : in.src) {
                if (o.kind == LOperand::Kind::VReg && spilled.count(o.idx)) {
                    uint32_t s = 0x80000000u + scratch_base +
                                 next_scratch++;
                    LInstr ld;
                    ld.op = Op::LdLocal;
                    ld.dst = s;
                    ld.src[0] = LOperand::special(bif::kSrZero);
                    ld.imm = static_cast<int32_t>(slot.at(o.idx));
                    out.push_back(ld);
                    o = LOperand::vreg(s);
                }
            }
            bool spill_dst =
                in.dst != kNoVReg && spilled.count(in.dst);
            uint32_t dslot = spill_dst ? slot.at(in.dst) : 0;
            if (spill_dst)
                in.dst = 0x80000000u + scratch_base;   // scratch 0
            out.push_back(in);
            if (spill_dst) {
                LInstr st;
                st.op = Op::StLocal;
                st.src[0] = LOperand::special(bif::kSrZero);
                st.src[1] = LOperand::vreg(in.dst);
                st.imm = static_cast<int32_t>(dslot);
                out.push_back(st);
            }
        }
        blk.instrs = std::move(out);
        // Spilled condition vreg: reload before terminator.
        if (blk.term == TermKind::CondJump &&
            spilled.count(blk.condVreg)) {
            uint32_t s = 0x80000000u + scratch_base;
            LInstr ld;
            ld.op = Op::LdLocal;
            ld.dst = s;
            ld.src[0] = LOperand::special(bif::kSrZero);
            ld.imm = static_cast<int32_t>(slot.at(blk.condVreg));
            blk.instrs.push_back(ld);
            blk.condVreg = s;
        }
    }
}

} // namespace

AllocResult
allocateRegisters(LFunc &f)
{
    AllocResult res;
    std::set<uint32_t> spilled;

    for (int round = 0; round < 8; ++round) {
        Liveness lv = computeLiveness(f);
        std::vector<Interval> intervals = computeIntervals(f, lv);

        // Scratch-pinned vregs (0x80000000 + k) do not take part in
        // the scan.
        std::vector<Interval> scannable;
        for (const Interval &i : intervals) {
            if (i.vreg < 0x80000000u)
                scannable.push_back(i);
        }

        unsigned usable = bif::kNumGrfRegs -
                          (spilled.empty() ? 0 : kNumScratch);
        std::map<uint32_t, uint32_t> assignment;
        std::set<uint32_t> to_spill;
        bool fits = scan(scannable, usable, assignment, to_spill);

        if (fits) {
            // Apply the mapping.
            uint32_t max_reg = 0;
            auto map_reg = [&](uint32_t v) -> uint32_t {
                uint32_t r;
                if (v >= 0x80000000u) {
                    r = v - 0x80000000u;   // scratch GRF number
                } else {
                    r = assignment.at(v);
                }
                max_reg = std::max(max_reg, r);
                return r;
            };
            for (LBlock &blk : f.blocks) {
                for (LInstr &in : blk.instrs) {
                    for (LOperand &o : in.src) {
                        if (o.kind == LOperand::Kind::VReg)
                            o.idx = map_reg(o.idx);
                    }
                    if (in.dst != kNoVReg)
                        in.dst = map_reg(in.dst);
                }
                if (blk.term == TermKind::CondJump)
                    blk.condVreg = map_reg(blk.condVreg);
            }
            res.regCount = max_reg + 1;
            res.spills = static_cast<uint32_t>(spilled.size());
            return res;
        }

        if (to_spill.empty())
            simError("kclc: register allocation failed to make progress");
        bool first_spill = spilled.empty();
        spilled.insert(to_spill.begin(), to_spill.end());
        // Reserve the top registers as scratch once spilling starts.
        rewriteSpills(f, to_spill,
                      bif::kNumGrfRegs - kNumScratch);
        (void)first_spill;
    }
    simError("kclc: register pressure too high (allocation diverged)");
}

} // namespace bifsim::kclc
