#ifndef BIFSIM_KCLC_COMPILER_H
#define BIFSIM_KCLC_COMPILER_H

/**
 * @file
 * The kclc driver: KCL source -> BIF shader binary.
 *
 * Optimisation levels emulate distinct vendor compiler versions; the
 * paper's Fig. 1 shows Arm's OpenCL compiler versions v5.6-v6.2
 * emitting substantially different code for the same kernel, and these
 * presets reproduce that effect:
 *
 *   "5.6" / O0  one instruction per clause, no optimisation
 *   "5.7" / O1  4-tuple clauses, constant folding
 *   "6.0" / O2  8-tuple clauses, CSE, clause-temporary promotion
 *   "6.1" / O3  + dual-issue slot scheduling
 *   "6.2"       alias of 6.1 (as in the paper, 6.1 == 6.2)
 */

#include <string>
#include <vector>

#include "gpu/isa/bif.h"
#include "kclc/ir.h"

namespace bifsim::kclc {

/** Compiler configuration (a "toolchain version"). */
struct CompilerOptions
{
    unsigned maxTuples = 8;
    bool pairSlots = true;
    bool constFold = true;
    bool cse = true;
    bool tempPromote = true;
    bool dualIssue = false;
    std::string versionName = "6.0";

    /** Preset for optimisation level 0..3. */
    static CompilerOptions forLevel(int level);

    /** Preset emulating vendor compiler version "5.6".."6.2". */
    static CompilerOptions forVersion(const std::string &version);
};

/** A compiled kernel ready to hand to the runtime. */
struct CompiledKernel
{
    std::string name;
    bif::Module mod;
    std::vector<uint8_t> binary;   ///< Encoded BIF image.
    std::vector<ArgInfo> args;
    uint32_t regCount = 0;
    uint32_t localBytes = 0;
    uint32_t spills = 0;
};

/**
 * Compiles one kernel out of @p source.
 * @throws SimError on any lexical/syntax/semantic error.
 */
CompiledKernel compileKernel(const std::string &source,
                             const std::string &kernel_name,
                             const CompilerOptions &opts =
                                 CompilerOptions());

/** Compiles every kernel in @p source. */
std::vector<CompiledKernel> compileAll(const std::string &source,
                                       const CompilerOptions &opts =
                                           CompilerOptions());

} // namespace bifsim::kclc

#endif // BIFSIM_KCLC_COMPILER_H
