#ifndef BIFSIM_KCLC_IR_H
#define BIFSIM_KCLC_IR_H

/**
 * @file
 * kclc's linear IR: BIF instructions over virtual registers, organised
 * into basic blocks with explicit terminators.  The scheduler later
 * packs these into clauses and the allocator maps virtual registers to
 * the 64-entry GRF (with clause-temporary promotion at higher
 * optimisation levels).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/isa/bif.h"

namespace bifsim::kclc {

/** Sentinel: no destination register. */
constexpr uint32_t kNoVReg = 0xffffffffu;

/** An instruction operand before register allocation. */
struct LOperand
{
    enum class Kind : uint8_t { None, VReg, Special };

    Kind kind = Kind::None;
    uint32_t idx = 0;   ///< VReg id, or bif special-operand code.

    static LOperand
    vreg(uint32_t id)
    {
        return {Kind::VReg, id};
    }

    static LOperand
    special(uint32_t code)
    {
        return {Kind::Special, code};
    }

    static LOperand none() { return {}; }

    bool operator==(const LOperand &) const = default;
};

/** One IR instruction (BIF op over virtual registers). */
struct LInstr
{
    bif::Op op = bif::Op::Nop;
    uint32_t dst = kNoVReg;
    LOperand src[3];
    int32_t imm = 0;
};

/** Basic-block terminators. */
enum class TermKind : uint8_t
{
    Jump,       ///< Unconditional to target0.
    CondJump,   ///< condVreg != 0 -> target0 else target1.
    Return,     ///< Thread exit.
};

/** A basic block. */
struct LBlock
{
    std::vector<LInstr> instrs;
    TermKind term = TermKind::Return;
    uint32_t condVreg = kNoVReg;
    uint32_t target0 = 0;
    uint32_t target1 = 0;
};

/** Metadata for one kernel argument slot. */
struct ArgInfo
{
    std::string name;
    bool isBuffer = false;   ///< Buffer (pointer) vs scalar value.
};

/** A lowered kernel function. */
struct LFunc
{
    std::string name;
    std::vector<LBlock> blocks;
    uint32_t numVRegs = 0;
    std::vector<uint32_t> rom;
    uint32_t localBytes = 0;
    bool usesBarrier = false;
    std::vector<ArgInfo> args;

    /** Allocates a fresh virtual register id. */
    uint32_t newVReg() { return numVRegs++; }

    /** Interns a 32-bit constant into the ROM, returning its index. */
    uint32_t
    internRom(uint32_t word)
    {
        for (uint32_t i = 0; i < rom.size(); ++i) {
            if (rom[i] == word)
                return i;
        }
        rom.push_back(word);
        return static_cast<uint32_t>(rom.size() - 1);
    }
};

/** Renders the IR as text (for tests and debugging). */
std::string dumpFunc(const LFunc &f);

} // namespace bifsim::kclc

#endif // BIFSIM_KCLC_IR_H
