#include "kclc/passes.h"

#include <bit>
#include <cmath>
#include <map>
#include <set>
#include <tuple>
#include <vector>

namespace bifsim::kclc {

namespace {

using bif::Op;

/** True for ops with no side effects (safe to CSE / DCE). */
bool
isPure(Op op)
{
    switch (op) {
      case Op::StGlobal: case Op::StGlobalU8: case Op::StLocal:
      case Op::AtomAddG: case Op::AtomAddL: case Op::Barrier:
      case Op::Branch: case Op::BranchZ: case Op::BranchNZ: case Op::Ret:
        return false;
      default:
        return true;
    }
}

/** True for memory loads (pure but not constant-foldable / CSE-able
 *  across stores; we simply never CSE them). */
bool
isLoad(Op op)
{
    switch (op) {
      case Op::LdGlobal: case Op::LdGlobalU8: case Op::LdLocal:
        return true;
      default:
        return false;
    }
}

float
asF(uint32_t u)
{
    return std::bit_cast<float>(u);
}

uint32_t
asU(float f)
{
    return std::bit_cast<uint32_t>(f);
}

/** Constant-evaluates pure arithmetic; returns false if not handled.
 *  Semantics mirror the shader-core executor exactly. */
bool
evalConst(Op op, uint32_t a, uint32_t b, uint32_t c, int32_t imm,
          uint32_t &out)
{
    auto cmp = [&](int q, bool unordered) {
        bif::CmpMode m = static_cast<bif::CmpMode>(imm & 7);
        if (unordered)
            return m == bif::CmpMode::Ne;
        switch (m) {
          case bif::CmpMode::Eq: return q == 0;
          case bif::CmpMode::Ne: return q != 0;
          case bif::CmpMode::Lt: return q < 0;
          case bif::CmpMode::Le: return q <= 0;
          case bif::CmpMode::Gt: return q > 0;
          case bif::CmpMode::Ge: return q >= 0;
        }
        return false;
    };
    switch (op) {
      case Op::FAdd: out = asU(asF(a) + asF(b)); return true;
      case Op::FSub: out = asU(asF(a) - asF(b)); return true;
      case Op::FMul: out = asU(asF(a) * asF(b)); return true;
      case Op::FFma: out = asU(asF(a) * asF(b) + asF(c)); return true;
      case Op::FMin: out = asU(std::fmin(asF(a), asF(b))); return true;
      case Op::FMax: out = asU(std::fmax(asF(a), asF(b))); return true;
      case Op::FAbs: out = asU(std::fabs(asF(a))); return true;
      case Op::FNeg: out = asU(-asF(a)); return true;
      case Op::FFloor: out = asU(std::floor(asF(a))); return true;
      case Op::IAdd: out = a + b; return true;
      case Op::ISub: out = a - b; return true;
      case Op::IMul: out = a * b; return true;
      case Op::IAnd: out = a & b; return true;
      case Op::IOr:  out = a | b; return true;
      case Op::IXor: out = a ^ b; return true;
      case Op::INot: out = ~a; return true;
      case Op::IShl: out = a << (b & 31); return true;
      case Op::IShr: out = a >> (b & 31); return true;
      case Op::IAsr:
        out = static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
        return true;
      case Op::IMin:
        out = static_cast<int32_t>(a) < static_cast<int32_t>(b) ? a : b;
        return true;
      case Op::IMax:
        out = static_cast<int32_t>(a) > static_cast<int32_t>(b) ? a : b;
        return true;
      case Op::UMin: out = a < b ? a : b; return true;
      case Op::UMax: out = a > b ? a : b; return true;
      case Op::ICmp: {
        int32_t sa = static_cast<int32_t>(a), sb = static_cast<int32_t>(b);
        out = cmp(sa < sb ? -1 : sa > sb ? 1 : 0, false);
        return true;
      }
      case Op::UCmp:
        out = cmp(a < b ? -1 : a > b ? 1 : 0, false);
        return true;
      case Op::FCmp: {
        float fa = asF(a), fb = asF(b);
        if (std::isnan(fa) || std::isnan(fb)) {
            out = cmp(0, true);
            return true;
        }
        out = cmp(fa < fb ? -1 : fa > fb ? 1 : 0, false);
        return true;
      }
      case Op::CSel: out = a != 0 ? b : c; return true;
      case Op::Mov: out = a; return true;
      case Op::I2F:
        out = asU(static_cast<float>(static_cast<int32_t>(a)));
        return true;
      case Op::U2F: out = asU(static_cast<float>(a)); return true;
      default:
        return false;
    }
}

} // namespace

void
constFold(LFunc &f)
{
    for (LBlock &blk : f.blocks) {
        std::map<uint32_t, uint32_t> known;   // vreg -> constant value.
        for (LInstr &in : blk.instrs) {
            bool all_const = true;
            uint32_t vals[3] = {0, 0, 0};
            for (int i = 0; i < 3; ++i) {
                const LOperand &o = in.src[i];
                if (o.kind == LOperand::Kind::None) {
                    continue;
                } else if (o.kind == LOperand::Kind::Special &&
                           o.idx == bif::kSrZero) {
                    vals[i] = 0;
                } else if (o.kind == LOperand::Kind::VReg &&
                           known.count(o.idx)) {
                    vals[i] = known.at(o.idx);
                } else {
                    all_const = false;
                }
            }

            uint32_t folded = 0;
            bool did_fold = false;
            if (in.op == Op::MovImm) {
                folded = static_cast<uint32_t>(in.imm);
                did_fold = true;
            } else if (in.op == Op::LdRom &&
                       static_cast<size_t>(in.imm) < f.rom.size()) {
                folded = f.rom[in.imm];
                did_fold = true;
            } else if (all_const && isPure(in.op) && !isLoad(in.op) &&
                       in.op != Op::LdArg &&
                       evalConst(in.op, vals[0], vals[1], vals[2], in.imm,
                                 folded)) {
                // Replace with a constant materialisation.
                int64_t sv = static_cast<int32_t>(folded);
                if (sv >= -(1 << 23) && sv < (1 << 23)) {
                    in.op = Op::MovImm;
                    in.imm = static_cast<int32_t>(folded);
                } else {
                    in.op = Op::LdRom;
                    in.imm = static_cast<int32_t>(f.internRom(folded));
                }
                in.src[0] = in.src[1] = in.src[2] = LOperand::none();
                did_fold = true;
            }

            if (in.dst != kNoVReg) {
                if (did_fold)
                    known[in.dst] = folded;
                else
                    known.erase(in.dst);
            }
        }
    }
}

void
cse(LFunc &f)
{
    using Key = std::tuple<Op, uint8_t, uint32_t, uint8_t, uint32_t,
                           uint8_t, uint32_t, int32_t>;
    for (LBlock &blk : f.blocks) {
        std::map<Key, uint32_t> avail;
        for (LInstr &in : blk.instrs) {
            if (!isPure(in.op) || isLoad(in.op) || in.dst == kNoVReg ||
                in.op == Op::Mov) {
                // Redefinitions still invalidate below.
            } else {
                Key k{in.op,
                      static_cast<uint8_t>(in.src[0].kind), in.src[0].idx,
                      static_cast<uint8_t>(in.src[1].kind), in.src[1].idx,
                      static_cast<uint8_t>(in.src[2].kind), in.src[2].idx,
                      in.imm};
                auto it = avail.find(k);
                if (it != avail.end() && it->second != in.dst) {
                    uint32_t prev = it->second;
                    in.op = Op::Mov;
                    in.src[0] = LOperand::vreg(prev);
                    in.src[1] = in.src[2] = LOperand::none();
                    in.imm = 0;
                } else {
                    avail[k] = in.dst;
                }
            }
            if (in.dst != kNoVReg) {
                // Invalidate expressions using or producing this vreg.
                for (auto it = avail.begin(); it != avail.end();) {
                    const Key &k = it->first;
                    bool kill = it->second == in.dst;
                    if (std::get<1>(k) ==
                            static_cast<uint8_t>(LOperand::Kind::VReg) &&
                        std::get<2>(k) == in.dst)
                        kill = true;
                    if (std::get<3>(k) ==
                            static_cast<uint8_t>(LOperand::Kind::VReg) &&
                        std::get<4>(k) == in.dst)
                        kill = true;
                    if (std::get<5>(k) ==
                            static_cast<uint8_t>(LOperand::Kind::VReg) &&
                        std::get<6>(k) == in.dst)
                        kill = true;
                    if (kill)
                        it = avail.erase(it);
                    else
                        ++it;
                }
            }
        }
    }
}

void
copyProp(LFunc &f)
{
    for (LBlock &blk : f.blocks) {
        std::map<uint32_t, uint32_t> copies;   // dst -> src vreg.
        auto subst = [&](LOperand &o) {
            if (o.kind == LOperand::Kind::VReg) {
                auto it = copies.find(o.idx);
                if (it != copies.end())
                    o.idx = it->second;
            }
        };
        for (LInstr &in : blk.instrs) {
            for (LOperand &o : in.src)
                subst(o);
            if (in.dst != kNoVReg) {
                // Kill copies involving the redefined vreg.
                copies.erase(in.dst);
                for (auto it = copies.begin(); it != copies.end();) {
                    if (it->second == in.dst)
                        it = copies.erase(it);
                    else
                        ++it;
                }
                if (in.op == Op::Mov &&
                    in.src[0].kind == LOperand::Kind::VReg &&
                    in.src[0].idx != in.dst) {
                    copies[in.dst] = in.src[0].idx;
                }
            }
        }
        // Terminator condition.
        if (blk.term == TermKind::CondJump) {
            auto it = copies.find(blk.condVreg);
            if (it != copies.end())
                blk.condVreg = it->second;
        }
    }
}

void
deadCodeElim(LFunc &f)
{
    for (;;) {
        std::set<uint32_t> used;
        for (const LBlock &blk : f.blocks) {
            for (const LInstr &in : blk.instrs) {
                for (const LOperand &o : in.src) {
                    if (o.kind == LOperand::Kind::VReg)
                        used.insert(o.idx);
                }
            }
            if (blk.term == TermKind::CondJump)
                used.insert(blk.condVreg);
        }
        bool changed = false;
        for (LBlock &blk : f.blocks) {
            std::vector<LInstr> keep;
            keep.reserve(blk.instrs.size());
            for (const LInstr &in : blk.instrs) {
                bool live = !isPure(in.op) ||
                            (in.dst != kNoVReg && used.count(in.dst));
                if (live)
                    keep.push_back(in);
                else
                    changed = true;
            }
            blk.instrs = std::move(keep);
        }
        if (!changed)
            return;
    }
}

void
removeUnreachable(LFunc &f)
{
    std::vector<bool> reach(f.blocks.size(), false);
    std::vector<uint32_t> stack = {0};
    while (!stack.empty()) {
        uint32_t b = stack.back();
        stack.pop_back();
        if (b >= f.blocks.size() || reach[b])
            continue;
        reach[b] = true;
        const LBlock &blk = f.blocks[b];
        if (blk.term == TermKind::Jump) {
            stack.push_back(blk.target0);
        } else if (blk.term == TermKind::CondJump) {
            stack.push_back(blk.target0);
            stack.push_back(blk.target1);
        }
    }
    // Renumber.
    std::vector<uint32_t> remap(f.blocks.size(), 0);
    std::vector<LBlock> kept;
    for (size_t b = 0; b < f.blocks.size(); ++b) {
        if (reach[b]) {
            remap[b] = static_cast<uint32_t>(kept.size());
            kept.push_back(std::move(f.blocks[b]));
        }
    }
    for (LBlock &blk : kept) {
        if (blk.term == TermKind::Jump) {
            blk.target0 = remap[blk.target0];
        } else if (blk.term == TermKind::CondJump) {
            blk.target0 = remap[blk.target0];
            blk.target1 = remap[blk.target1];
        }
    }
    f.blocks = std::move(kept);
}

} // namespace bifsim::kclc
