#include "kclc/parser.h"

#include "common/logging.h"
#include "kclc/lexer.h"

namespace bifsim::kclc {

std::string
Type::str() const
{
    std::string s;
    if (isPointer) {
        s += space == AddrSpace::Global ? "global "
           : space == AddrSpace::Local ? "local " : "";
    }
    switch (scalar) {
      case Scalar::Void: s += "void"; break;
      case Scalar::Int: s += "int"; break;
      case Scalar::Uint: s += "uint"; break;
      case Scalar::Float: s += "float"; break;
      case Scalar::Bool: s += "bool"; break;
    }
    if (isPointer)
        s += "*";
    return s;
}

const Kernel *
Unit::find(const std::string &name) const
{
    for (const Kernel &k : kernels) {
        if (k.name == name)
            return &k;
    }
    return nullptr;
}

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    Unit
    run()
    {
        Unit u;
        while (peek().kind != Tok::End)
            u.kernels.push_back(parseKernel());
        return u;
    }

  private:
    std::vector<Token> toks_;
    size_t pos_ = 0;

    const Token &peek(size_t k = 0) const
    {
        size_t i = pos_ + k;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    const Token &advance() { return toks_[pos_++]; }

    [[noreturn]] void
    err(const std::string &msg) const
    {
        simError("kcl line %d: %s (got %s)", peek().line, msg.c_str(),
                 tokName(peek().kind));
    }

    bool
    accept(Tok kind)
    {
        if (peek().kind == kind) {
            pos_++;
            return true;
        }
        return false;
    }

    const Token &
    expect(Tok kind, const char *what)
    {
        if (peek().kind != kind)
            err(strfmt("expected %s", what));
        return advance();
    }

    static bool
    isScalarKw(Tok t)
    {
        return t == Tok::KwInt || t == Tok::KwUint || t == Tok::KwFloat ||
               t == Tok::KwBool;
    }

    Scalar
    scalarFrom(Tok t)
    {
        switch (t) {
          case Tok::KwInt: return Scalar::Int;
          case Tok::KwUint: return Scalar::Uint;
          case Tok::KwFloat: return Scalar::Float;
          case Tok::KwBool: return Scalar::Bool;
          default: err("expected type");
        }
    }

    ExprPtr
    mk(ExprKind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = peek().line;
        return e;
    }

    Kernel
    parseKernel()
    {
        expect(Tok::KwKernel, "'kernel'");
        Kernel k;
        k.line = peek().line;
        expect(Tok::KwVoid, "'void'");
        k.name = expect(Tok::Ident, "kernel name").text;
        expect(Tok::LParen, "'('");
        if (!accept(Tok::RParen)) {
            do {
                k.params.push_back(parseParam());
            } while (accept(Tok::Comma));
            expect(Tok::RParen, "')'");
        }
        expect(Tok::LBrace, "'{'");
        while (!accept(Tok::RBrace))
            k.body.push_back(parseStmt());
        return k;
    }

    Param
    parseParam()
    {
        Param p;
        AddrSpace space = AddrSpace::None;
        // const / address space qualifiers in any order before the type.
        for (;;) {
            if (accept(Tok::KwConst))
                continue;
            if (accept(Tok::KwGlobal)) {
                space = AddrSpace::Global;
                continue;
            }
            if (accept(Tok::KwLocal)) {
                space = AddrSpace::Local;
                continue;
            }
            break;
        }
        Scalar s = scalarFrom(advance().kind);
        while (accept(Tok::KwConst)) {}
        if (accept(Tok::Star)) {
            if (space == AddrSpace::None)
                space = AddrSpace::Global;
            p.type = Type::pointerType(s, space);
        } else {
            if (space != AddrSpace::None)
                err("address space on non-pointer parameter");
            p.type = Type::scalarType(s);
        }
        p.name = expect(Tok::Ident, "parameter name").text;
        return p;
    }

    StmtPtr
    mkStmt(StmtKind kind)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = peek().line;
        return s;
    }

    StmtPtr
    parseStmt()
    {
        switch (peek().kind) {
          case Tok::LBrace: {
            advance();
            auto s = mkStmt(StmtKind::Block);
            while (!accept(Tok::RBrace))
                s->body.push_back(parseStmt());
            return s;
          }
          case Tok::KwLocal:
            return parseLocalArray();
          case Tok::KwIf: {
            advance();
            auto s = mkStmt(StmtKind::If);
            expect(Tok::LParen, "'('");
            s->expr = parseExpr();
            expect(Tok::RParen, "')'");
            s->thenStmt = parseStmt();
            if (accept(Tok::KwElse))
                s->elseStmt = parseStmt();
            return s;
          }
          case Tok::KwWhile: {
            advance();
            auto s = mkStmt(StmtKind::While);
            expect(Tok::LParen, "'('");
            s->expr = parseExpr();
            expect(Tok::RParen, "')'");
            s->thenStmt = parseStmt();
            return s;
          }
          case Tok::KwFor: {
            advance();
            auto s = mkStmt(StmtKind::For);
            expect(Tok::LParen, "'('");
            if (!accept(Tok::Semi)) {
                if (isScalarKw(peek().kind))
                    s->initStmt = parseDecl();
                else {
                    s->initStmt = mkStmt(StmtKind::ExprStmt);
                    s->initStmt->expr = parseExpr();
                    expect(Tok::Semi, "';'");
                }
            }
            if (!accept(Tok::Semi)) {
                s->expr = parseExpr();
                expect(Tok::Semi, "';'");
            }
            if (peek().kind != Tok::RParen)
                s->stepExpr = parseExpr();
            expect(Tok::RParen, "')'");
            s->thenStmt = parseStmt();
            return s;
          }
          case Tok::KwReturn: {
            advance();
            auto s = mkStmt(StmtKind::Return);
            expect(Tok::Semi, "';'");
            return s;
          }
          case Tok::Semi:
            advance();
            return mkStmt(StmtKind::Block);   // Empty statement.
          default:
            if (isScalarKw(peek().kind))
                return parseDecl();
            {
                auto s = mkStmt(StmtKind::ExprStmt);
                s->expr = parseExpr();
                expect(Tok::Semi, "';'");
                return s;
            }
        }
    }

    /** `local float tile[256];` */
    StmtPtr
    parseLocalArray()
    {
        expect(Tok::KwLocal, "'local'");
        auto s = mkStmt(StmtKind::LocalArray);
        s->declType = Type::scalarType(scalarFrom(advance().kind));
        s->name = expect(Tok::Ident, "array name").text;
        expect(Tok::LBracket, "'['");
        const Token &sz = expect(Tok::IntLit, "array size");
        s->arraySize = static_cast<uint32_t>(sz.intValue);
        expect(Tok::RBracket, "']'");
        expect(Tok::Semi, "';'");
        if (s->arraySize == 0)
            simError("kcl line %d: zero-sized local array", s->line);
        return s;
    }

    /** One or more declarations: `int a = 1, b;` */
    StmtPtr
    parseDecl()
    {
        Scalar sc = scalarFrom(advance().kind);
        auto block = mkStmt(StmtKind::Block);
        do {
            auto s = mkStmt(StmtKind::Decl);
            s->declType = Type::scalarType(sc);
            s->name = expect(Tok::Ident, "variable name").text;
            if (accept(Tok::Assign))
                s->init = parseAssignment();
            block->body.push_back(std::move(s));
        } while (accept(Tok::Comma));
        expect(Tok::Semi, "';'");
        if (block->body.size() == 1)
            return std::move(block->body[0]);
        return block;
    }

    ExprPtr parseExpr() { return parseAssignment(); }

    ExprPtr
    parseAssignment()
    {
        ExprPtr lhs = parseTernary();
        Tok k = peek().kind;
        if (k == Tok::Assign || k == Tok::PlusAssign ||
            k == Tok::MinusAssign || k == Tok::StarAssign) {
            auto e = mk(ExprKind::Assign);
            e->op = k == Tok::Assign ? "=" :
                    k == Tok::PlusAssign ? "+=" :
                    k == Tok::MinusAssign ? "-=" : "*=";
            advance();
            e->children.push_back(std::move(lhs));
            e->children.push_back(parseAssignment());
            return e;
        }
        return lhs;
    }

    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseBinary(0);
        if (peek().kind != Tok::Question)
            return cond;
        auto e = mk(ExprKind::Ternary);
        advance();
        e->children.push_back(std::move(cond));
        e->children.push_back(parseExpr());
        expect(Tok::Colon, "':'");
        e->children.push_back(parseTernary());
        return e;
    }

    struct BinOp
    {
        Tok tok;
        const char *spelling;
        int prec;
    };

    static const BinOp *
    binOp(Tok t)
    {
        static const BinOp ops[] = {
            {Tok::PipePipe, "||", 1}, {Tok::AmpAmp, "&&", 2},
            {Tok::Pipe, "|", 3},      {Tok::Caret, "^", 4},
            {Tok::Amp, "&", 5},       {Tok::EqEq, "==", 6},
            {Tok::BangEq, "!=", 6},   {Tok::Less, "<", 7},
            {Tok::LessEq, "<=", 7},   {Tok::Greater, ">", 7},
            {Tok::GreaterEq, ">=", 7}, {Tok::Shl, "<<", 8},
            {Tok::Shr, ">>", 8},      {Tok::Plus, "+", 9},
            {Tok::Minus, "-", 9},     {Tok::Star, "*", 10},
            {Tok::Slash, "/", 10},    {Tok::Percent, "%", 10},
        };
        for (const BinOp &op : ops) {
            if (op.tok == t)
                return &op;
        }
        return nullptr;
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            const BinOp *op = binOp(peek().kind);
            if (!op || op->prec < min_prec)
                return lhs;
            advance();
            ExprPtr rhs = parseBinary(op->prec + 1);
            auto e = mk(ExprKind::Binary);
            e->op = op->spelling;
            e->children.push_back(std::move(lhs));
            e->children.push_back(std::move(rhs));
            lhs = std::move(e);
        }
    }

    ExprPtr
    parseUnary()
    {
        switch (peek().kind) {
          case Tok::Minus: case Tok::Bang: case Tok::Tilde:
          case Tok::Plus: {
            auto e = mk(ExprKind::Unary);
            e->op = peek().kind == Tok::Minus ? "-"
                  : peek().kind == Tok::Bang ? "!"
                  : peek().kind == Tok::Tilde ? "~" : "+";
            advance();
            e->children.push_back(parseUnary());
            return e;
          }
          case Tok::PlusPlus: case Tok::MinusMinus: {
            auto e = mk(ExprKind::IncDec);
            e->op = peek().kind == Tok::PlusPlus ? "++pre" : "--pre";
            advance();
            e->children.push_back(parseUnary());
            return e;
          }
          default:
            return parsePostfix();
        }
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        for (;;) {
            if (accept(Tok::LBracket)) {
                auto idx = mk(ExprKind::Index);
                idx->children.push_back(std::move(e));
                idx->children.push_back(parseExpr());
                expect(Tok::RBracket, "']'");
                e = std::move(idx);
            } else if (peek().kind == Tok::PlusPlus ||
                       peek().kind == Tok::MinusMinus) {
                auto pd = mk(ExprKind::IncDec);
                pd->op = peek().kind == Tok::PlusPlus ? "post++"
                                                      : "post--";
                advance();
                pd->children.push_back(std::move(e));
                e = std::move(pd);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        const Token &t = peek();
        switch (t.kind) {
          case Tok::IntLit: {
            auto e = mk(ExprKind::IntLit);
            e->intValue = t.intValue;
            advance();
            return e;
          }
          case Tok::FloatLit: {
            auto e = mk(ExprKind::FloatLit);
            e->floatValue = t.floatValue;
            advance();
            return e;
          }
          case Tok::KwTrue: case Tok::KwFalse: {
            auto e = mk(ExprKind::BoolLit);
            e->intValue = t.kind == Tok::KwTrue;
            advance();
            return e;
          }
          case Tok::Ident: {
            std::string name = t.text;
            advance();
            if (accept(Tok::LParen)) {
                auto e = mk(ExprKind::Call);
                e->name = name;
                if (!accept(Tok::RParen)) {
                    do {
                        e->children.push_back(parseAssignment());
                    } while (accept(Tok::Comma));
                    expect(Tok::RParen, "')'");
                }
                return e;
            }
            auto e = mk(ExprKind::VarRef);
            e->name = name;
            return e;
          }
          case Tok::LParen: {
            // Cast or parenthesised expression.
            if (isScalarKw(peek(1).kind) && peek(2).kind == Tok::RParen) {
                advance();
                auto e = mk(ExprKind::Cast);
                e->castType = Type::scalarType(scalarFrom(advance().kind));
                expect(Tok::RParen, "')'");
                e->children.push_back(parseUnary());
                return e;
            }
            advance();
            ExprPtr e = parseExpr();
            expect(Tok::RParen, "')'");
            return e;
          }
          default:
            err("expected expression");
        }
    }
};

} // namespace

Unit
parse(const std::string &source)
{
    Parser p(lex(source));
    return p.run();
}

} // namespace bifsim::kclc
