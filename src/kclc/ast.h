#ifndef BIFSIM_KCLC_AST_H
#define BIFSIM_KCLC_AST_H

/**
 * @file
 * Abstract syntax tree for KCL kernels.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bifsim::kclc {

/** Scalar element types. */
enum class Scalar : uint8_t { Void, Int, Uint, Float, Bool };

/** Pointer address spaces. */
enum class AddrSpace : uint8_t { None, Global, Local };

/** A (possibly pointer) KCL type. */
struct Type
{
    Scalar scalar = Scalar::Void;
    bool isPointer = false;
    AddrSpace space = AddrSpace::None;

    bool operator==(const Type &) const = default;

    static Type
    scalarType(Scalar s)
    {
        Type t;
        t.scalar = s;
        return t;
    }

    static Type
    pointerType(Scalar s, AddrSpace sp)
    {
        Type t;
        t.scalar = s;
        t.isPointer = true;
        t.space = sp;
        return t;
    }

    std::string str() const;
};

// ---------------------------------------------------------------- Expr

/** Expression node kinds. */
enum class ExprKind : uint8_t
{
    IntLit, FloatLit, BoolLit, VarRef, Unary, Binary, Assign, Ternary,
    Call, Index, Cast, IncDec,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** A KCL expression. */
struct Expr
{
    ExprKind kind;
    int line = 0;

    // Literals.
    uint64_t intValue = 0;
    float floatValue = 0;

    // VarRef / Call.
    std::string name;

    // Operator spelling for Unary/Binary/Assign/IncDec
    // ("+", "-", "&&", "+=", "++pre", "post--", ...).
    std::string op;

    // Children: Unary{a}, Binary{a,b}, Assign{lhs,rhs},
    // Ternary{cond,a,b}, Index{base,index}, Cast{a}, Call{args...}.
    std::vector<ExprPtr> children;

    // Cast target.
    Type castType;
};

// ---------------------------------------------------------------- Stmt

/** Statement node kinds. */
enum class StmtKind : uint8_t
{
    Decl, ExprStmt, If, For, While, Return, Block, LocalArray,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** A KCL statement. */
struct Stmt
{
    StmtKind kind;
    int line = 0;

    // Decl / LocalArray.
    Type declType;
    std::string name;
    ExprPtr init;            ///< Decl initialiser (may be null).
    uint32_t arraySize = 0;  ///< LocalArray element count.

    // ExprStmt / Return value / If cond / While cond.
    ExprPtr expr;

    // If{then,els}, For{init,cond,step,body}, While{body}, Block{body}.
    StmtPtr thenStmt;
    StmtPtr elseStmt;
    StmtPtr initStmt;
    ExprPtr stepExpr;
    std::vector<StmtPtr> body;
};

/** A kernel parameter. */
struct Param
{
    Type type;
    std::string name;
};

/** A parsed kernel function. */
struct Kernel
{
    std::string name;
    std::vector<Param> params;
    std::vector<StmtPtr> body;
    int line = 0;
};

/** A parsed translation unit (one or more kernels). */
struct Unit
{
    std::vector<Kernel> kernels;

    /** Finds a kernel by name; returns null if absent. */
    const Kernel *find(const std::string &name) const;
};

} // namespace bifsim::kclc

#endif // BIFSIM_KCLC_AST_H
