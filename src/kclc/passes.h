#ifndef BIFSIM_KCLC_PASSES_H
#define BIFSIM_KCLC_PASSES_H

/**
 * @file
 * Machine-independent optimisation passes over the LIR.  Which passes
 * run depends on the "compiler version" being emulated (Fig. 1).
 */

#include "kclc/ir.h"

namespace bifsim::kclc {

/** Folds operations whose inputs are compile-time constants. */
void constFold(LFunc &f);

/** Local common-subexpression elimination (per basic block). */
void cse(LFunc &f);

/** Local copy propagation (per basic block). */
void copyProp(LFunc &f);

/** Removes instructions whose results are never used. */
void deadCodeElim(LFunc &f);

/** Removes blocks unreachable from the entry. */
void removeUnreachable(LFunc &f);

} // namespace bifsim::kclc

#endif // BIFSIM_KCLC_PASSES_H
