#include "soc/devices.h"

#include <cstdio>

namespace bifsim::soc {

// ---------------------------------------------------------------- Intc

void
Intc::setLine(unsigned line, bool level)
{
    sim::LockGuard g(lock_);
    uint32_t mask = 1u << (line & 31);
    if (level)
        pending_ |= mask;
    else
        pending_ &= ~mask;
    updateOutput();
}

uint32_t
Intc::pending() const
{
    sim::LockGuard g(lock_);
    return pending_;
}

void
Intc::updateOutput()
{
    bool level = (pending_ & enable_) != 0;
    if (level != out_level_) {
        out_level_ = level;
        if (output_)
            output_(level);
    }
}

uint32_t
Intc::mmioRead(Addr offset)
{
    sim::LockGuard g(lock_);
    switch (offset) {
      case kRegPending:
        return pending_;
      case kRegEnable:
        return enable_;
      case kRegClaim: {
        uint32_t active = pending_ & enable_;
        for (unsigned i = 0; i < 32; ++i) {
            if (active & (1u << i))
                return i + 1;
        }
        return 0;
      }
      default:
        return 0;
    }
}

void
Intc::mmioWrite(Addr offset, uint32_t value)
{
    sim::LockGuard g(lock_);
    if (offset == kRegEnable) {
        enable_ = value;
        updateOutput();
    }
}

void
Intc::reset()
{
    sim::LockGuard g(lock_);
    pending_ = 0;
    enable_ = 0;
    updateOutput();
}

void
Intc::saveState(snapshot::ChunkWriter &w) const
{
    sim::LockGuard g(lock_);
    w.u32(pending_);
    w.u32(enable_);
}

void
Intc::restoreState(snapshot::ChunkReader &r)
{
    uint32_t pending = r.u32();
    uint32_t enable = r.u32();
    sim::LockGuard g(lock_);
    pending_ = pending;
    enable_ = enable;
    updateOutput();
}

// --------------------------------------------------------------- Timer

void
Timer::tick(uint64_t ticks)
{
    mtime_ += ticks;
    update();
}

void
Timer::update()
{
    if (irq_)
        irq_(mtime_ >= mtimecmp_);
}

uint32_t
Timer::mmioRead(Addr offset)
{
    switch (offset) {
      case kRegTimeLo:
        // Latch the high word so a subsequent HI read pairs with this
        // LO read even if time advances in between (no torn 64-bit
        // reads).
        timeHiLatch_ = static_cast<uint32_t>(mtime_ >> 32);
        timeHiValid_ = true;
        return static_cast<uint32_t>(mtime_);
      case kRegTimeHi:
        if (timeHiValid_) {
            timeHiValid_ = false;
            return timeHiLatch_;
        }
        return static_cast<uint32_t>(mtime_ >> 32);
      case kRegCmpLo:
        cmpHiLatch_ = static_cast<uint32_t>(mtimecmp_ >> 32);
        cmpHiValid_ = true;
        return static_cast<uint32_t>(mtimecmp_);
      case kRegCmpHi:
        if (cmpHiValid_) {
            cmpHiValid_ = false;
            return cmpHiLatch_;
        }
        return static_cast<uint32_t>(mtimecmp_ >> 32);
      default:
        return 0;
    }
}

void
Timer::mmioWrite(Addr offset, uint32_t value)
{
    switch (offset) {
      case kRegCmpLo:
        mtimecmp_ = (mtimecmp_ & 0xffffffff00000000ull) | value;
        break;
      case kRegCmpHi:
        mtimecmp_ = (mtimecmp_ & 0xffffffffull) |
                    (static_cast<uint64_t>(value) << 32);
        break;
      default:
        break;
    }
    update();
}

void
Timer::reset()
{
    mtime_ = 0;
    mtimecmp_ = ~uint64_t{0};
    timeHiValid_ = false;
    cmpHiValid_ = false;
    update();
}

void
Timer::saveState(snapshot::ChunkWriter &w) const
{
    w.u64(mtime_);
    w.u64(mtimecmp_);
    w.u8(timeHiValid_ ? 1 : 0);
    w.u32(timeHiLatch_);
    w.u8(cmpHiValid_ ? 1 : 0);
    w.u32(cmpHiLatch_);
}

void
Timer::restoreState(snapshot::ChunkReader &r)
{
    uint64_t mtime = r.u64();
    uint64_t mtimecmp = r.u64();
    bool time_valid = r.u8() != 0;
    uint32_t time_latch = r.u32();
    bool cmp_valid = r.u8() != 0;
    uint32_t cmp_latch = r.u32();
    mtime_ = mtime;
    mtimecmp_ = mtimecmp;
    timeHiValid_ = time_valid;
    timeHiLatch_ = time_latch;
    cmpHiValid_ = cmp_valid;
    cmpHiLatch_ = cmp_latch;
    update();
}

// ---------------------------------------------------------------- Uart

std::string
Uart::output() const
{
    sim::LockGuard g(lock_);
    return output_;
}

void
Uart::setEcho(bool echo)
{
    // mmioWrite reads echo_ under lock_ from whichever thread drives
    // guest MMIO; toggling it unlocked was a data race (caught by the
    // annotation migration; regression: test_soc.UartEchoToggleRace).
    sim::LockGuard g(lock_);
    echo_ = echo;
}

void
Uart::clearOutput()
{
    sim::LockGuard g(lock_);
    output_.clear();
}

uint32_t
Uart::mmioRead(Addr offset)
{
    if (offset == kRegLsr)
        return 1;   // TX always ready.
    return 0;
}

void
Uart::mmioWrite(Addr offset, uint32_t value)
{
    if (offset != kRegThr)
        return;
    sim::LockGuard g(lock_);
    char c = static_cast<char>(value & 0xff);
    output_ += c;
    if (echo_)
        std::fputc(c, stderr);
}

void
Uart::reset()
{
    // echo_ is host-side configuration, not guest-visible state.
    clearOutput();
}

void
Uart::saveState(snapshot::ChunkWriter &w) const
{
    sim::LockGuard g(lock_);
    w.str(output_);
}

void
Uart::restoreState(snapshot::ChunkReader &r)
{
    std::string out = r.str();
    sim::LockGuard g(lock_);
    output_ = std::move(out);
}

} // namespace bifsim::soc
