#include "soc/devices.h"

#include <cstdio>

namespace bifsim::soc {

// ---------------------------------------------------------------- Intc

void
Intc::setLine(unsigned line, bool level)
{
    std::lock_guard<std::mutex> g(lock_);
    uint32_t mask = 1u << (line & 31);
    if (level)
        pending_ |= mask;
    else
        pending_ &= ~mask;
    updateOutput();
}

uint32_t
Intc::pending() const
{
    std::lock_guard<std::mutex> g(lock_);
    return pending_;
}

void
Intc::updateOutput()
{
    bool level = (pending_ & enable_) != 0;
    if (level != out_level_) {
        out_level_ = level;
        if (output_)
            output_(level);
    }
}

uint32_t
Intc::mmioRead(Addr offset)
{
    std::lock_guard<std::mutex> g(lock_);
    switch (offset) {
      case kRegPending:
        return pending_;
      case kRegEnable:
        return enable_;
      case kRegClaim: {
        uint32_t active = pending_ & enable_;
        for (unsigned i = 0; i < 32; ++i) {
            if (active & (1u << i))
                return i + 1;
        }
        return 0;
      }
      default:
        return 0;
    }
}

void
Intc::mmioWrite(Addr offset, uint32_t value)
{
    std::lock_guard<std::mutex> g(lock_);
    if (offset == kRegEnable) {
        enable_ = value;
        updateOutput();
    }
}

// --------------------------------------------------------------- Timer

void
Timer::tick(uint64_t ticks)
{
    mtime_ += ticks;
    update();
}

void
Timer::update()
{
    if (irq_)
        irq_(mtime_ >= mtimecmp_);
}

uint32_t
Timer::mmioRead(Addr offset)
{
    switch (offset) {
      case kRegTimeLo: return static_cast<uint32_t>(mtime_);
      case kRegTimeHi: return static_cast<uint32_t>(mtime_ >> 32);
      case kRegCmpLo:  return static_cast<uint32_t>(mtimecmp_);
      case kRegCmpHi:  return static_cast<uint32_t>(mtimecmp_ >> 32);
      default:         return 0;
    }
}

void
Timer::mmioWrite(Addr offset, uint32_t value)
{
    switch (offset) {
      case kRegCmpLo:
        mtimecmp_ = (mtimecmp_ & 0xffffffff00000000ull) | value;
        break;
      case kRegCmpHi:
        mtimecmp_ = (mtimecmp_ & 0xffffffffull) |
                    (static_cast<uint64_t>(value) << 32);
        break;
      default:
        break;
    }
    update();
}

// ---------------------------------------------------------------- Uart

std::string
Uart::output() const
{
    std::lock_guard<std::mutex> g(lock_);
    return output_;
}

void
Uart::clearOutput()
{
    std::lock_guard<std::mutex> g(lock_);
    output_.clear();
}

uint32_t
Uart::mmioRead(Addr offset)
{
    if (offset == kRegLsr)
        return 1;   // TX always ready.
    return 0;
}

void
Uart::mmioWrite(Addr offset, uint32_t value)
{
    if (offset != kRegThr)
        return;
    std::lock_guard<std::mutex> g(lock_);
    char c = static_cast<char>(value & 0xff);
    output_ += c;
    if (echo_)
        std::fputc(c, stderr);
}

} // namespace bifsim::soc
