#ifndef BIFSIM_SOC_DEVICES_H
#define BIFSIM_SOC_DEVICES_H

/**
 * @file
 * Essential platform devices: interrupt controller, timer and UART.
 * Together with the GPU these are the devices the paper lists as
 * required for full-system operation (§III).
 */

#include <cstdint>
#include <functional>
#include <string>

#include "common/thread_annotations.h"

#include "mem/device.h"
#include "snapshot/snapshot.h"

namespace bifsim::soc {

/**
 * A simple 32-line level-triggered interrupt controller.
 *
 * Register map (byte offsets):
 *   0x00 PENDING (ro)  raw device line levels
 *   0x04 ENABLE  (rw)  per-line enable mask
 *   0x08 CLAIM   (ro)  lowest pending+enabled line number + 1, or 0
 *
 * The controller output (any pending & enabled line) is forwarded to
 * the CPU's external interrupt pin through a callback.
 */
class Intc : public Device
{
  public:
    using OutputFn = std::function<void(bool level)>;

    /** @param output  Invoked whenever the aggregate output changes. */
    explicit Intc(OutputFn output) : output_(std::move(output)) {}

    /** Drives device line @p line to @p level.  Thread-safe (any
     *  device thread; the GPU raises its line from the JM thread). */
    void setLine(unsigned line, bool level) EXCLUDES(lock_);

    /** Current raw pending mask (for tests). */
    uint32_t pending() const EXCLUDES(lock_);

    uint32_t mmioRead(Addr offset) override EXCLUDES(lock_);
    void mmioWrite(Addr offset, uint32_t value) override EXCLUDES(lock_);
    void reset() override EXCLUDES(lock_);
    std::string name() const override { return "intc"; }

    /** Serialises pending/enable state into @p w. */
    void saveState(snapshot::ChunkWriter &w) const EXCLUDES(lock_);

    /** Restores from @p r and re-drives the output callback. */
    void restoreState(snapshot::ChunkReader &r) EXCLUDES(lock_);

    static constexpr Addr kRegPending = 0x00;
    static constexpr Addr kRegEnable = 0x04;
    static constexpr Addr kRegClaim = 0x08;

  private:
    mutable sim::Mutex lock_;
    OutputFn output_;                         ///< Immutable after ctor;
                                              ///< fired under lock_.
    uint32_t pending_ GUARDED_BY(lock_) = 0;
    uint32_t enable_ GUARDED_BY(lock_) = 0;
    bool out_level_ GUARDED_BY(lock_) = false;

    void updateOutput() REQUIRES(lock_);
};

/**
 * A machine timer.
 *
 * Register map:
 *   0x00 MTIME_LO (ro)   0x04 MTIME_HI (ro)
 *   0x08 MTIMECMP_LO (rw) 0x0C MTIMECMP_HI (rw)
 *
 * Time is advanced explicitly by the platform (1 tick = 1 retired guest
 * instruction).  Raises the CPU timer interrupt while mtime >= mtimecmp.
 *
 * Threading: single-threaded by contract — tick() and MMIO both run on
 * the CPU/simulation thread only, so the Timer carries no lock (§5i).
 *
 * 64-bit reads are tear-free: reading a LO register latches the
 * matching HI word, and the next HI read returns the latched value, so
 * a guest reading LO then HI across a tick() never observes a
 * mismatched pair.  A HI read with no prior LO read returns the live
 * value.
 */
class Timer : public Device
{
  public:
    using IrqFn = std::function<void(bool level)>;

    explicit Timer(IrqFn irq) : irq_(std::move(irq)) {}

    /** Advances mtime by @p ticks and re-evaluates the IRQ level. */
    void tick(uint64_t ticks);

    /** Current mtime value. */
    uint64_t now() const { return mtime_; }

    uint32_t mmioRead(Addr offset) override;
    void mmioWrite(Addr offset, uint32_t value) override;
    void reset() override;
    std::string name() const override { return "timer"; }

    /** Serialises time/compare state (including latches) into @p w. */
    void saveState(snapshot::ChunkWriter &w) const;

    /** Restores from @p r and re-evaluates the IRQ level. */
    void restoreState(snapshot::ChunkReader &r);

    static constexpr Addr kRegTimeLo = 0x00;
    static constexpr Addr kRegTimeHi = 0x04;
    static constexpr Addr kRegCmpLo = 0x08;
    static constexpr Addr kRegCmpHi = 0x0c;

  private:
    IrqFn irq_;
    uint64_t mtime_ = 0;
    uint64_t mtimecmp_ = ~uint64_t{0};
    uint32_t timeHiLatch_ = 0;    ///< HI word captured by a LO read.
    bool timeHiValid_ = false;
    uint32_t cmpHiLatch_ = 0;
    bool cmpHiValid_ = false;

    void update();
};

/**
 * A write-only console UART.  Guest writes to THR append to a host-side
 * string so tests and examples can observe guest output.
 *
 * Register map:
 *   0x00 THR (wo)  transmit byte
 *   0x04 LSR (ro)  line status; bit0 = TX ready (always 1)
 */
class Uart : public Device
{
  public:
    Uart() = default;

    /** Everything the guest has printed so far. */
    std::string output() const EXCLUDES(lock_);

    /** Clears the captured output. */
    void clearOutput() EXCLUDES(lock_);

    /** If true, echo guest output to the simulator's stderr.
     *  Thread-safe: echo_ is read under lock_ by mmioWrite, so the
     *  toggle takes the same lock. */
    void setEcho(bool echo) EXCLUDES(lock_);

    uint32_t mmioRead(Addr offset) override EXCLUDES(lock_);
    void mmioWrite(Addr offset, uint32_t value) override EXCLUDES(lock_);
    void reset() override EXCLUDES(lock_);
    std::string name() const override { return "uart"; }

    /** Serialises the captured output into @p w. */
    void saveState(snapshot::ChunkWriter &w) const EXCLUDES(lock_);

    /** Restores the captured output from @p r. */
    void restoreState(snapshot::ChunkReader &r) EXCLUDES(lock_);

    static constexpr Addr kRegThr = 0x00;
    static constexpr Addr kRegLsr = 0x04;

  private:
    mutable sim::Mutex lock_;
    std::string output_ GUARDED_BY(lock_);
    bool echo_ GUARDED_BY(lock_) = false;
};

} // namespace bifsim::soc

#endif // BIFSIM_SOC_DEVICES_H
