#ifndef BIFSIM_SNAPSHOT_SNAPSHOT_H
#define BIFSIM_SNAPSHOT_SNAPSHOT_H

/**
 * @file
 * Whole-system snapshot image format (DESIGN.md §5e).
 *
 * An image is a little-endian, versioned, chunked container:
 *
 *   file header   : magic 'BSNP' | u32 version | u32 chunkCount | u32 rsvd
 *   chunk         : u32 tag | u32 length | u32 crc32(payload) | payload
 *
 * Each stateful component serialises itself into one chunk through a
 * ChunkWriter and re-parses it through a ChunkReader.  The loader is
 * adversarially robust: Image::fromBytes() validates the complete
 * structure (magic, version, chunk bounds, CRCs, duplicate tags) before
 * exposing any payload, and every ChunkReader read is bounds-checked,
 * so a truncated or bit-flipped image always fails with a located
 * SnapshotError and never crashes or half-applies.
 *
 * Restore follows parse-then-commit: components decode a chunk fully
 * into locals before touching live state, and rt::System resets the
 * machine on any mid-restore failure so a System is never left
 * half-restored.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"

namespace bifsim::snapshot {

/** Thrown for any malformed, truncated, corrupt or incompatible image.
 *  The message locates the failure (chunk tag + byte offset). */
class SnapshotError : public SimError
{
  public:
    using SimError::SimError;
};

/** Throws SnapshotError with a printf-style formatted message. */
[[noreturn]] void snapshotError(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over @p len bytes. */
uint32_t crc32(const void *data, size_t len);

/** Builds a chunk tag from a 4-character name, e.g. makeTag("CPU "). */
constexpr uint32_t
makeTag(const char (&name)[5])
{
    return static_cast<uint32_t>(static_cast<uint8_t>(name[0])) |
           (static_cast<uint32_t>(static_cast<uint8_t>(name[1])) << 8) |
           (static_cast<uint32_t>(static_cast<uint8_t>(name[2])) << 16) |
           (static_cast<uint32_t>(static_cast<uint8_t>(name[3])) << 24);
}

/** Renders a tag back to its 4-character name for error messages. */
std::string tagName(uint32_t tag);

/** Image format constants. */
constexpr uint32_t kMagic = makeTag("BSNP");
constexpr uint32_t kVersion = 2;   ///< v2: CPU chunk gained DBT counters.

/** Well-known chunk tags. */
constexpr uint32_t kTagConfig = makeTag("CONF");
constexpr uint32_t kTagCpu = makeTag("CPU ");
constexpr uint32_t kTagMem = makeTag("MEM ");
constexpr uint32_t kTagUart = makeTag("UART");
constexpr uint32_t kTagTimer = makeTag("TIMR");
constexpr uint32_t kTagIntc = makeTag("INTC");
constexpr uint32_t kTagGpu = makeTag("GPU ");
constexpr uint32_t kTagSession = makeTag("SESS");

/** Serialises one chunk payload (little-endian, append-only). */
class ChunkWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);

    /** Appends raw bytes. */
    void bytes(const void *data, size_t len);

    /** Appends a u32 length followed by the string bytes. */
    void str(const std::string &s);

    /** Bytes written so far. */
    size_t size() const { return buf_.size(); }

    const std::vector<uint8_t> &data() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked cursor over one chunk payload.  Every read that would
 * run past the end throws a SnapshotError naming the chunk and offset.
 */
class ChunkReader
{
  public:
    ChunkReader(uint32_t tag, const uint8_t *data, size_t len)
        : tag_(tag), data_(data), len_(len)
    {
    }

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();

    /** Copies @p len raw bytes out. */
    void bytes(void *dst, size_t len);

    /** Returns a pointer to @p len raw bytes and advances. */
    const uint8_t *raw(size_t len);

    /** Reads a u32-length-prefixed string (capped at the chunk size). */
    std::string str();

    /** Bytes left in the chunk. */
    size_t remaining() const { return len_ - pos_; }

    /** Current byte offset inside the chunk. */
    size_t offset() const { return pos_; }

    /** Throws unless the whole payload has been consumed. */
    void expectEnd() const;

    /** Throws a located SnapshotError at the current cursor. */
    [[noreturn]] void fail(const std::string &what) const;

  private:
    uint32_t tag_;
    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;

    void need(size_t n);
};

/** Writes a complete snapshot image chunk by chunk. */
class Writer
{
  public:
    /**
     * Opens a new chunk.  The returned ChunkWriter stays valid until
     * the next chunk() / finish() call; its contents are sealed (length
     * + CRC computed) at that point.  Duplicate tags are rejected.
     */
    ChunkWriter &chunk(uint32_t tag);

    /** Seals the image and returns the serialised bytes. */
    std::vector<uint8_t> finish();

    /** Seals the image and writes it to @p path (atomic: tmp+rename). */
    void writeFile(const std::string &path);

  private:
    struct PendingChunk
    {
        uint32_t tag;
        ChunkWriter payload;
    };

    std::vector<PendingChunk> chunks_;
};

/**
 * A fully validated snapshot image.  Construction (load / fromBytes)
 * performs complete structural validation — magic, version, per-chunk
 * bounds, CRC32 of every payload, duplicate-tag detection — before any
 * chunk becomes visible, so consumers never observe a corrupt payload.
 */
class Image
{
  public:
    /** Parses and validates @p bytes.  Throws SnapshotError. */
    static Image fromBytes(std::vector<uint8_t> bytes);

    /** Reads and validates the image at @p path.  Throws SnapshotError. */
    static Image load(const std::string &path);

    /** Format version of the image. */
    uint32_t version() const { return version_; }

    /** True if the image carries chunk @p tag. */
    bool has(uint32_t tag) const { return chunks_.count(tag) != 0; }

    /** Returns a reader over chunk @p tag; throws if absent. */
    ChunkReader chunk(uint32_t tag) const;

    /** CRC-32 of chunk @p tag's payload, retained from the validation
     *  pass (no re-hash); throws if absent.  Identifies a chunk's
     *  exact content — e.g. the fleet restore fast path proves a
     *  System's CoW RAM backing matches the image's MEM chunk by CRC
     *  before skipping the chunk (DESIGN.md §5j). */
    uint32_t chunkCrc(uint32_t tag) const;

    /** Payload length of chunk @p tag in bytes; throws if absent. */
    size_t chunkLength(uint32_t tag) const;

    /** Total image size in bytes. */
    size_t sizeBytes() const { return bytes_.size(); }

  private:
    Image() = default;

    struct Extent
    {
        size_t offset;
        size_t length;
        uint32_t crc;
    };

    std::vector<uint8_t> bytes_;
    std::map<uint32_t, Extent> chunks_;
    uint32_t version_ = 0;
};

} // namespace bifsim::snapshot

#endif // BIFSIM_SNAPSHOT_SNAPSHOT_H
