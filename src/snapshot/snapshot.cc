#include "snapshot/snapshot.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace bifsim::snapshot {

void
snapshotError(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    throw SnapshotError("snapshot: " + msg);
}

uint32_t
crc32(const void *data, size_t len)
{
    static const auto table = [] {
        std::vector<uint32_t> t(256);
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = 0xffffffffu;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::string
tagName(uint32_t tag)
{
    std::string s;
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((tag >> (8 * i)) & 0xff);
        s += (c >= 0x20 && c < 0x7f) ? c : '?';
    }
    return s;
}

// --------------------------------------------------------- ChunkWriter

void
ChunkWriter::u16(uint16_t v)
{
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void
ChunkWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ChunkWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ChunkWriter::bytes(const void *data, size_t len)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
ChunkWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

// --------------------------------------------------------- ChunkReader

void
ChunkReader::need(size_t n)
{
    if (n > len_ - pos_)
        fail(strfmt("need %zu more bytes, %zu left", n, len_ - pos_));
}

uint8_t
ChunkReader::u8()
{
    need(1);
    return data_[pos_++];
}

uint16_t
ChunkReader::u16()
{
    need(2);
    uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
}

uint32_t
ChunkReader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

uint64_t
ChunkReader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

void
ChunkReader::bytes(void *dst, size_t len)
{
    need(len);
    std::memcpy(dst, data_ + pos_, len);
    pos_ += len;
}

const uint8_t *
ChunkReader::raw(size_t len)
{
    need(len);
    const uint8_t *p = data_ + pos_;
    pos_ += len;
    return p;
}

std::string
ChunkReader::str()
{
    uint32_t n = u32();
    if (n > remaining())
        fail(strfmt("string length %u exceeds %zu remaining bytes",
                    n, remaining()));
    std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
    pos_ += n;
    return s;
}

void
ChunkReader::expectEnd() const
{
    if (pos_ != len_)
        fail(strfmt("%zu trailing bytes", len_ - pos_));
}

void
ChunkReader::fail(const std::string &what) const
{
    throw SnapshotError(strfmt("snapshot: chunk %s at offset %zu: %s",
                               tagName(tag_).c_str(), pos_, what.c_str()));
}

// -------------------------------------------------------------- Writer

ChunkWriter &
Writer::chunk(uint32_t tag)
{
    for (const PendingChunk &c : chunks_) {
        if (c.tag == tag)
            snapshotError("duplicate chunk %s", tagName(tag).c_str());
    }
    chunks_.push_back(PendingChunk{tag, ChunkWriter()});
    return chunks_.back().payload;
}

std::vector<uint8_t>
Writer::finish()
{
    ChunkWriter out;
    out.u32(kMagic);
    out.u32(kVersion);
    out.u32(static_cast<uint32_t>(chunks_.size()));
    out.u32(0);   // reserved
    for (const PendingChunk &c : chunks_) {
        const std::vector<uint8_t> &p = c.payload.data();
        out.u32(c.tag);
        out.u32(static_cast<uint32_t>(p.size()));
        out.u32(crc32(p.data(), p.size()));
        out.bytes(p.data(), p.size());
    }
    return out.data();
}

void
Writer::writeFile(const std::string &path)
{
    std::vector<uint8_t> bytes = finish();
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        snapshotError("cannot open %s for writing", tmp.c_str());
    size_t n = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1,
                                               bytes.size(), f);
    bool ok = n == bytes.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        snapshotError("short write to %s", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        snapshotError("cannot rename %s to %s", tmp.c_str(), path.c_str());
    }
}

// --------------------------------------------------------------- Image

Image
Image::fromBytes(std::vector<uint8_t> bytes)
{
    Image img;
    img.bytes_ = std::move(bytes);
    const uint8_t *d = img.bytes_.data();
    size_t size = img.bytes_.size();

    ChunkReader hdr(makeTag("HDR "), d, size);
    if (size < 16)
        snapshotError("header truncated: %zu bytes, need 16", size);
    uint32_t magic = hdr.u32();
    if (magic != kMagic)
        snapshotError("bad magic 0x%08x, want 'BSNP'", magic);
    img.version_ = hdr.u32();
    if (img.version_ != kVersion)
        snapshotError("unsupported version %u (supported: %u)",
                      img.version_, kVersion);
    uint32_t count = hdr.u32();
    hdr.u32();   // reserved
    // Each chunk needs at least a 12-byte header: cheap sanity bound
    // before the walk so a hostile count cannot make us loop long.
    if (static_cast<uint64_t>(count) * 12 > size - 16)
        snapshotError("chunk count %u impossible in %zu bytes", count, size);

    size_t pos = 16;
    for (uint32_t i = 0; i < count; ++i) {
        if (size - pos < 12)
            snapshotError("chunk %u header truncated at offset %zu", i, pos);
        ChunkReader ch(makeTag("HDR "), d + pos, 12);
        uint32_t tag = ch.u32();
        uint32_t len = ch.u32();
        uint32_t want_crc = ch.u32();
        pos += 12;
        if (len > size - pos)
            snapshotError("chunk %s length %u overruns image "
                          "(offset %zu, %zu bytes left)",
                          tagName(tag).c_str(), len, pos, size - pos);
        uint32_t got_crc = crc32(d + pos, len);
        if (got_crc != want_crc)
            snapshotError("chunk %s CRC mismatch at offset %zu "
                          "(stored 0x%08x, computed 0x%08x)",
                          tagName(tag).c_str(), pos, want_crc, got_crc);
        if (!img.chunks_.emplace(tag, Extent{pos, len, got_crc}).second)
            snapshotError("duplicate chunk %s at offset %zu",
                          tagName(tag).c_str(), pos);
        pos += len;
    }
    if (pos != size)
        snapshotError("%zu trailing bytes after last chunk", size - pos);
    return img;
}

Image
Image::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        snapshotError("cannot open %s", path.c_str());
    std::vector<uint8_t> bytes;
    uint8_t buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err)
        snapshotError("read error on %s", path.c_str());
    return fromBytes(std::move(bytes));
}

ChunkReader
Image::chunk(uint32_t tag) const
{
    auto it = chunks_.find(tag);
    if (it == chunks_.end())
        snapshotError("missing chunk %s", tagName(tag).c_str());
    return ChunkReader(tag, bytes_.data() + it->second.offset,
                       it->second.length);
}

uint32_t
Image::chunkCrc(uint32_t tag) const
{
    auto it = chunks_.find(tag);
    if (it == chunks_.end())
        snapshotError("missing chunk %s", tagName(tag).c_str());
    return it->second.crc;
}

size_t
Image::chunkLength(uint32_t tag) const
{
    auto it = chunks_.find(tag);
    if (it == chunks_.end())
        snapshotError("missing chunk %s", tagName(tag).c_str());
    return it->second.length;
}

} // namespace bifsim::snapshot
