#ifndef BIFSIM_INSTRUMENT_STATS_H
#define BIFSIM_INSTRUMENT_STATS_H

/**
 * @file
 * Instrumentation counters (paper §IV).
 *
 * Static per-clause metrics are computed once at decode time; execution
 * merely accumulates thread-weighted clause frequencies, so the
 * measured overhead stays small (paper: <5%).  Per-worker collectors
 * are merged at job completion with no hot-path synchronisation.
 */

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/histogram.h"
#include "gpu/isa/bif.h"
#include "snapshot/snapshot.h"

namespace bifsim::sa32 {
struct CoreStats;
}

namespace bifsim::fleet {
struct FleetStats;
}

namespace bifsim::metrics {
struct RegistryStats;
}

namespace bifsim::gpu {

/** Decode-time static metrics for one clause. */
struct ClauseStaticInfo
{
    uint32_t sizeTuples = 0;   ///< Clause size (1..8 tuples).
    uint32_t arith = 0;        ///< Arithmetic instructions.
    uint32_t ls = 0;           ///< Load/store instructions.
    uint32_t cf = 0;           ///< Control-flow instructions.
    uint32_t nop = 0;          ///< Empty issue slots.
    uint32_t grfReads = 0;     ///< Global register file reads.
    uint32_t grfWrites = 0;    ///< Global register file writes.
    uint32_t tempReads = 0;    ///< Clause-temporary reads.
    uint32_t tempWrites = 0;   ///< Clause-temporary writes.
    uint32_t constReads = 0;   ///< Kernel-argument (constant) reads.
    uint32_t romReads = 0;     ///< Embedded-ROM reads.
    uint32_t globalLd = 0;     ///< Main-memory loads.
    uint32_t globalSt = 0;     ///< Main-memory stores.
    uint32_t localLd = 0;      ///< Local-memory loads.
    uint32_t localSt = 0;      ///< Local-memory stores.
};

/** Computes decode-time static metrics for every clause of a module. */
std::vector<ClauseStaticInfo> analyzeClauses(const bif::Module &mod);

/**
 * Dynamic, thread-weighted kernel statistics for one job (or summed
 * over jobs).  All counters count *per executed thread*: a clause run
 * by a warp with 3 active threads contributes 3x its static counts.
 */
struct KernelStats
{
    uint64_t arithInstrs = 0;
    uint64_t lsInstrs = 0;
    uint64_t cfInstrs = 0;
    uint64_t nopSlots = 0;
    uint64_t grfReads = 0;
    uint64_t grfWrites = 0;
    uint64_t tempAccesses = 0;
    uint64_t constReads = 0;
    uint64_t romReads = 0;
    uint64_t globalLdSt = 0;
    uint64_t localLdSt = 0;
    uint64_t clausesExecuted = 0;     ///< Thread-weighted clause count.
    uint64_t threadsLaunched = 0;
    uint64_t warpsLaunched = 0;
    uint64_t workgroups = 0;
    uint64_t divergentBranches = 0;   ///< Warp executions that split.

    /** Thread-weighted clause-size distribution (index = tuples). */
    Histogram clauseSizes{bif::kMaxTuplesPerClause + 1};

    /**
     * Divergence CFG: edge (from-clause, to-clause) -> number of threads
     * that followed it (paper Fig. 6).  Key = from << 32 | to.
     */
    std::map<uint64_t, uint64_t> cfgEdges;

    /** Total executed instructions (arith + ls + cf). */
    uint64_t
    totalInstrs() const
    {
        return arithInstrs + lsInstrs + cfInstrs;
    }

    /** Total issue slots including empty ones. */
    uint64_t totalSlots() const { return totalInstrs() + nopSlots; }

    /** Mean executed clause size in tuples. */
    double avgClauseSize() const { return clauseSizes.mean(); }

    /** Accumulates another collector's counts into this one. */
    void merge(const KernelStats &other);

    /** Subtracts a previously merged baseline (all counters are
     *  monotone accumulators, so this recovers "counts since the
     *  baseline was taken"; zeroed CFG edges are dropped so the result
     *  compares equal to a freshly accumulated delta). */
    void subtract(const KernelStats &base);
};

/** Encodes a CFG edge key. */
constexpr uint64_t
cfgEdgeKey(uint32_t from, uint32_t to)
{
    return (static_cast<uint64_t>(from) << 32) | to;
}

/** Translation fast-path statistics (host-pointer TLB). */
struct TlbStats
{
    uint64_t lastPageHits = 0;  ///< One-entry last-page cache hits.
    uint64_t arrayHits = 0;     ///< Set-indexed TLB array hits.
    uint64_t walks = 0;         ///< Full page-table walks.

    uint64_t
    lookups() const
    {
        return lastPageHits + arrayHits + walks;
    }

    /** Fraction of translations served without a walk. */
    double
    hitRate() const
    {
        uint64_t n = lookups();
        return n ? static_cast<double>(n - walks) / n : 0.0;
    }

    void
    merge(const TlbStats &other)
    {
        lastPageHits += other.lastPageHits;
        arrayHits += other.arrayHits;
        walks += other.walks;
    }
};

/** System-level statistics (paper Table III). */
struct SystemStats
{
    uint64_t pagesAccessed = 0;    ///< Distinct pages touched by the GPU.
    uint64_t ctrlRegReads = 0;     ///< GPU control-register reads.
    uint64_t ctrlRegWrites = 0;    ///< GPU control-register writes.
    uint64_t irqsAsserted = 0;     ///< GPU interrupt assertions.
    uint64_t computeJobs = 0;      ///< Compute jobs executed.
};

/**
 * Work-stealing scheduler statistics (host-side diagnostic; not part
 * of the guest-visible state and not snapshotted).  Accumulated
 * thread-locally per worker while a job runs and merged once at job
 * completion, like every other collector.
 */
struct SchedStats
{
    uint64_t slicesRun = 0;      ///< Workgroup slices executed.
    uint64_t groupsRun = 0;      ///< Workgroups executed.
    uint64_t steals = 0;         ///< Slices taken from another worker.
    uint64_t stealAttempts = 0;  ///< Steal scans that probed a victim.
    uint64_t shaderL1Hits = 0;   ///< Worker shader-L1 hits.
    uint64_t shaderL2Fills = 0;  ///< Worker shader-L1 misses served
                                 ///< by the shared L2.

    void
    merge(const SchedStats &o)
    {
        slicesRun += o.slicesRun;
        groupsRun += o.groupsRun;
        steals += o.steals;
        stealAttempts += o.stealAttempts;
        shaderL1Hits += o.shaderL1Hits;
        shaderL2Fills += o.shaderL2Fills;
    }
};

/**
 * A named counter value: the unified view over the KernelStats /
 * TlbStats / SystemStats structs used by the trace subsystem's counter
 * events and the human-readable job summaries.  Names are static
 * strings ("kernel.arith_instrs", "tlb.walks", "sys.irqs_asserted"...)
 * so consumers can store the pointers without copying.
 */
struct NamedCounter
{
    const char *name;
    uint64_t value;
};

/** @name Snapshot serialisation of the stats structs.
 *  @{ */
void saveStats(snapshot::ChunkWriter &w, const KernelStats &k);
void restoreStats(snapshot::ChunkReader &r, KernelStats &k);
void saveStats(snapshot::ChunkWriter &w, const TlbStats &t);
void restoreStats(snapshot::ChunkReader &r, TlbStats &t);
void saveStats(snapshot::ChunkWriter &w, const SystemStats &s);
void restoreStats(snapshot::ChunkReader &r, SystemStats &s);
/** @} */

/** Appends every scalar counter of @p k under the "kernel." prefix. */
void appendCounters(std::vector<NamedCounter> &out, const KernelStats &k);

/** Appends every counter of @p t under the "tlb." prefix. */
void appendCounters(std::vector<NamedCounter> &out, const TlbStats &t);

/** Appends every counter of @p s under the "sys." prefix. */
void appendCounters(std::vector<NamedCounter> &out, const SystemStats &s);

/** Appends every counter of @p s under the "sched." prefix. */
void appendCounters(std::vector<NamedCounter> &out, const SchedStats &s);

/** Appends every CPU core counter (execution tiers, traps, DBT
 *  translation activity) under the "cpu." prefix. */
void appendCounters(std::vector<NamedCounter> &out,
                    const sa32::CoreStats &c);

/** Appends every fleet server counter (job outcomes, queueing, pool
 *  spawn/recycle activity) under the "fleet." prefix. */
void appendCounters(std::vector<NamedCounter> &out,
                    const fleet::FleetStats &f);

/** Appends the metrics registry's self-observation counters (§5k)
 *  under the "metrics." prefix. */
void appendCounters(std::vector<NamedCounter> &out,
                    const metrics::RegistryStats &m);

/** Per-worker collector, merged into the job totals at completion. */
struct WorkerCollector
{
    KernelStats kernel;
    std::vector<uint64_t> clauseExec;          ///< Per-clause thread count.
    std::unordered_set<uint32_t> pages;        ///< GPU-touched page numbers.

    void
    reset(size_t num_clauses)
    {
        kernel = KernelStats{};
        clauseExec.assign(num_clauses, 0);
        pages.clear();
    }
};

} // namespace bifsim::gpu

#endif // BIFSIM_INSTRUMENT_STATS_H
