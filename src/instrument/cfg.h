#ifndef BIFSIM_INSTRUMENT_CFG_H
#define BIFSIM_INSTRUMENT_CFG_H

/**
 * @file
 * Control-flow-graph reconstruction from clause-boundary PC tracking
 * (paper §IV-C, Fig. 6): nodes are clauses, edges carry the number and
 * proportion of threads that followed them, and nodes where threads
 * split are flagged as divergence points.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "instrument/stats.h"

namespace bifsim::instrument {

/** Sentinel node id for thread exit. */
constexpr uint32_t kCfgExit = 0xffffffffu;

/** A CFG edge with thread counts. */
struct CfgEdge
{
    uint32_t from = 0;
    uint32_t to = 0;
    uint64_t threads = 0;
    double fraction = 0.0;   ///< Share of threads leaving `from`.
};

/** A CFG node (one clause that ends in control flow). */
struct CfgNode
{
    uint32_t clause = 0;
    uint64_t outThreads = 0;
    bool divergent = false;   ///< More than one taken outgoing edge.
};

/** The reconstructed control-flow graph. */
struct Cfg
{
    std::vector<CfgNode> nodes;
    std::vector<CfgEdge> edges;
};

/** Builds the CFG from a kernel's recorded edge counts. */
Cfg buildCfg(const gpu::KernelStats &stats);

/** Formats a clause id like the paper's instruction addresses
 *  (Fig. 6 shows basic-block start addresses such as aa000070). */
std::string nodeLabel(uint32_t clause);

/** Renders the CFG as GraphViz DOT with edge percentages and
 *  divergent blocks highlighted. */
std::string toDot(const Cfg &cfg);

} // namespace bifsim::instrument

#endif // BIFSIM_INSTRUMENT_CFG_H
