#include "instrument/report.h"

#include "common/logging.h"

namespace bifsim::instrument {

namespace {

std::string
line(const char *key, uint64_t value)
{
    return strfmt("  %-24s %12llu\n", key,
                  static_cast<unsigned long long>(value));
}

} // namespace

std::string
formatKernelStats(const gpu::KernelStats &s)
{
    std::string out = "kernel statistics:\n";
    out += line("arithmetic instrs", s.arithInstrs);
    out += line("load/store instrs", s.lsInstrs);
    out += line("control-flow instrs", s.cfInstrs);
    out += line("empty issue slots", s.nopSlots);
    out += line("GRF reads", s.grfReads);
    out += line("GRF writes", s.grfWrites);
    out += line("temp accesses", s.tempAccesses);
    out += line("constant reads", s.constReads);
    out += line("ROM reads", s.romReads);
    out += line("global mem accesses", s.globalLdSt);
    out += line("local mem accesses", s.localLdSt);
    out += line("clauses executed", s.clausesExecuted);
    out += line("threads", s.threadsLaunched);
    out += line("warps", s.warpsLaunched);
    out += line("workgroups", s.workgroups);
    out += line("divergent branches", s.divergentBranches);
    out += strfmt("  %-24s %12.2f\n", "avg clause size",
                  s.avgClauseSize());
    return out;
}

std::string
formatSystemStats(const gpu::SystemStats &s)
{
    std::string out = "system statistics:\n";
    out += line("pages accessed", s.pagesAccessed);
    out += line("ctrl-reg reads", s.ctrlRegReads);
    out += line("ctrl-reg writes", s.ctrlRegWrites);
    out += line("interrupts asserted", s.irqsAsserted);
    out += line("compute jobs", s.computeJobs);
    return out;
}

std::string
formatClauseHistogram(const gpu::KernelStats &s)
{
    std::string out = "clause sizes:";
    for (size_t i = 1; i <= bif::kMaxTuplesPerClause; ++i) {
        out += strfmt(" %zu:%4.1f%%", i,
                      100.0 * s.clauseSizes.fraction(i));
    }
    out += "\n";
    return out;
}

} // namespace bifsim::instrument
