#ifndef BIFSIM_INSTRUMENT_REPORT_H
#define BIFSIM_INSTRUMENT_REPORT_H

/**
 * @file
 * Uniform textual reports for the simulator's statistics — the
 * "useful execution statistics" surface of the paper (§IV): program
 * execution, system interaction, and control flow.
 */

#include <string>

#include "instrument/stats.h"

namespace bifsim::instrument {

/** Renders kernel statistics as an aligned key/value block. */
std::string formatKernelStats(const gpu::KernelStats &stats);

/** Renders system statistics (Table III fields). */
std::string formatSystemStats(const gpu::SystemStats &stats);

/** Renders the clause-size distribution as a one-line histogram. */
std::string formatClauseHistogram(const gpu::KernelStats &stats);

} // namespace bifsim::instrument

#endif // BIFSIM_INSTRUMENT_REPORT_H
