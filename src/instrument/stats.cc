#include "instrument/stats.h"

namespace bifsim::gpu {

std::vector<ClauseStaticInfo>
analyzeClauses(const bif::Module &mod)
{
    using bif::Op;
    std::vector<ClauseStaticInfo> out;
    out.reserve(mod.clauses.size());
    for (const bif::Clause &cl : mod.clauses) {
        ClauseStaticInfo ci;
        ci.sizeTuples = static_cast<uint32_t>(cl.tuples.size());
        for (const bif::Tuple &t : cl.tuples) {
            for (const bif::Instr &in : t.slot) {
                if (in.op == Op::Nop) {
                    ci.nop++;
                    continue;
                }
                switch (bif::category(in.op)) {
                  case bif::Category::Arith:       ci.arith++; break;
                  case bif::Category::LoadStore:   ci.ls++; break;
                  case bif::Category::ControlFlow: ci.cf++; break;
                  case bif::Category::Nop:         break;
                }
                // Register-file traffic.  Special (preloaded) operands
                // live in the GRF on real Bifrost, so they count as GRF
                // reads.
                if (bif::isGrf(in.dst))
                    ci.grfWrites++;
                else if (bif::isTemp(in.dst))
                    ci.tempWrites++;
                for (uint8_t src : {in.src0, in.src1, in.src2}) {
                    if (bif::isGrf(src) || bif::isSpecial(src))
                        ci.grfReads++;
                    else if (bif::isTemp(src))
                        ci.tempReads++;
                }
                switch (in.op) {
                  case Op::LdRom:      ci.romReads++; break;
                  case Op::LdArg:      ci.constReads++; break;
                  case Op::LdGlobal: case Op::LdGlobalU8:
                    ci.globalLd++;
                    break;
                  case Op::StGlobal: case Op::StGlobalU8:
                    ci.globalSt++;
                    break;
                  case Op::AtomAddG:
                    ci.globalLd++;
                    ci.globalSt++;
                    break;
                  case Op::LdLocal:    ci.localLd++; break;
                  case Op::StLocal:    ci.localSt++; break;
                  case Op::AtomAddL:
                    ci.localLd++;
                    ci.localSt++;
                    break;
                  default:
                    break;
                }
            }
        }
        out.push_back(ci);
    }
    return out;
}

void
KernelStats::merge(const KernelStats &other)
{
    arithInstrs += other.arithInstrs;
    lsInstrs += other.lsInstrs;
    cfInstrs += other.cfInstrs;
    nopSlots += other.nopSlots;
    grfReads += other.grfReads;
    grfWrites += other.grfWrites;
    tempAccesses += other.tempAccesses;
    constReads += other.constReads;
    romReads += other.romReads;
    globalLdSt += other.globalLdSt;
    localLdSt += other.localLdSt;
    clausesExecuted += other.clausesExecuted;
    threadsLaunched += other.threadsLaunched;
    warpsLaunched += other.warpsLaunched;
    workgroups += other.workgroups;
    divergentBranches += other.divergentBranches;
    clauseSizes.merge(other.clauseSizes);
    for (const auto &[k, v] : other.cfgEdges)
        cfgEdges[k] += v;
}

void
appendCounters(std::vector<NamedCounter> &out, const KernelStats &k)
{
    out.push_back({"kernel.arith_instrs", k.arithInstrs});
    out.push_back({"kernel.ls_instrs", k.lsInstrs});
    out.push_back({"kernel.cf_instrs", k.cfInstrs});
    out.push_back({"kernel.nop_slots", k.nopSlots});
    out.push_back({"kernel.grf_reads", k.grfReads});
    out.push_back({"kernel.grf_writes", k.grfWrites});
    out.push_back({"kernel.temp_accesses", k.tempAccesses});
    out.push_back({"kernel.const_reads", k.constReads});
    out.push_back({"kernel.rom_reads", k.romReads});
    out.push_back({"kernel.global_ldst", k.globalLdSt});
    out.push_back({"kernel.local_ldst", k.localLdSt});
    out.push_back({"kernel.clauses_executed", k.clausesExecuted});
    out.push_back({"kernel.threads_launched", k.threadsLaunched});
    out.push_back({"kernel.warps_launched", k.warpsLaunched});
    out.push_back({"kernel.workgroups", k.workgroups});
    out.push_back({"kernel.divergent_branches", k.divergentBranches});
}

void
appendCounters(std::vector<NamedCounter> &out, const TlbStats &t)
{
    out.push_back({"tlb.last_page_hits", t.lastPageHits});
    out.push_back({"tlb.array_hits", t.arrayHits});
    out.push_back({"tlb.walks", t.walks});
}

void
appendCounters(std::vector<NamedCounter> &out, const SystemStats &s)
{
    out.push_back({"sys.pages_accessed", s.pagesAccessed});
    out.push_back({"sys.ctrl_reg_reads", s.ctrlRegReads});
    out.push_back({"sys.ctrl_reg_writes", s.ctrlRegWrites});
    out.push_back({"sys.irqs_asserted", s.irqsAsserted});
    out.push_back({"sys.compute_jobs", s.computeJobs});
}

} // namespace bifsim::gpu
