#include "instrument/stats.h"

namespace bifsim::gpu {

std::vector<ClauseStaticInfo>
analyzeClauses(const bif::Module &mod)
{
    using bif::Op;
    std::vector<ClauseStaticInfo> out;
    out.reserve(mod.clauses.size());
    for (const bif::Clause &cl : mod.clauses) {
        ClauseStaticInfo ci;
        ci.sizeTuples = static_cast<uint32_t>(cl.tuples.size());
        for (const bif::Tuple &t : cl.tuples) {
            for (const bif::Instr &in : t.slot) {
                if (in.op == Op::Nop) {
                    ci.nop++;
                    continue;
                }
                switch (bif::category(in.op)) {
                  case bif::Category::Arith:       ci.arith++; break;
                  case bif::Category::LoadStore:   ci.ls++; break;
                  case bif::Category::ControlFlow: ci.cf++; break;
                  case bif::Category::Nop:         break;
                }
                // Register-file traffic.  Special (preloaded) operands
                // live in the GRF on real Bifrost, so they count as GRF
                // reads.
                if (bif::isGrf(in.dst))
                    ci.grfWrites++;
                else if (bif::isTemp(in.dst))
                    ci.tempWrites++;
                for (uint8_t src : {in.src0, in.src1, in.src2}) {
                    if (bif::isGrf(src) || bif::isSpecial(src))
                        ci.grfReads++;
                    else if (bif::isTemp(src))
                        ci.tempReads++;
                }
                switch (in.op) {
                  case Op::LdRom:      ci.romReads++; break;
                  case Op::LdArg:      ci.constReads++; break;
                  case Op::LdGlobal: case Op::LdGlobalU8:
                    ci.globalLd++;
                    break;
                  case Op::StGlobal: case Op::StGlobalU8:
                    ci.globalSt++;
                    break;
                  case Op::AtomAddG:
                    ci.globalLd++;
                    ci.globalSt++;
                    break;
                  case Op::LdLocal:    ci.localLd++; break;
                  case Op::StLocal:    ci.localSt++; break;
                  case Op::AtomAddL:
                    ci.localLd++;
                    ci.localSt++;
                    break;
                  default:
                    break;
                }
            }
        }
        out.push_back(ci);
    }
    return out;
}

void
KernelStats::merge(const KernelStats &other)
{
    arithInstrs += other.arithInstrs;
    lsInstrs += other.lsInstrs;
    cfInstrs += other.cfInstrs;
    nopSlots += other.nopSlots;
    grfReads += other.grfReads;
    grfWrites += other.grfWrites;
    tempAccesses += other.tempAccesses;
    constReads += other.constReads;
    romReads += other.romReads;
    globalLdSt += other.globalLdSt;
    localLdSt += other.localLdSt;
    clausesExecuted += other.clausesExecuted;
    threadsLaunched += other.threadsLaunched;
    warpsLaunched += other.warpsLaunched;
    workgroups += other.workgroups;
    divergentBranches += other.divergentBranches;
    clauseSizes.merge(other.clauseSizes);
    for (const auto &[k, v] : other.cfgEdges)
        cfgEdges[k] += v;
}

} // namespace bifsim::gpu
