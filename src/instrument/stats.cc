#include "instrument/stats.h"

#include "cpu/core.h"
#include "fleet/fleet_stats.h"
#include "metrics/metrics.h"

namespace bifsim::gpu {

std::vector<ClauseStaticInfo>
analyzeClauses(const bif::Module &mod)
{
    using bif::Op;
    std::vector<ClauseStaticInfo> out;
    out.reserve(mod.clauses.size());
    for (const bif::Clause &cl : mod.clauses) {
        ClauseStaticInfo ci;
        ci.sizeTuples = static_cast<uint32_t>(cl.tuples.size());
        for (const bif::Tuple &t : cl.tuples) {
            for (const bif::Instr &in : t.slot) {
                if (in.op == Op::Nop) {
                    ci.nop++;
                    continue;
                }
                switch (bif::category(in.op)) {
                  case bif::Category::Arith:       ci.arith++; break;
                  case bif::Category::LoadStore:   ci.ls++; break;
                  case bif::Category::ControlFlow: ci.cf++; break;
                  case bif::Category::Nop:         break;
                }
                // Register-file traffic.  Special (preloaded) operands
                // live in the GRF on real Bifrost, so they count as GRF
                // reads.
                if (bif::isGrf(in.dst))
                    ci.grfWrites++;
                else if (bif::isTemp(in.dst))
                    ci.tempWrites++;
                for (uint8_t src : {in.src0, in.src1, in.src2}) {
                    if (bif::isGrf(src) || bif::isSpecial(src))
                        ci.grfReads++;
                    else if (bif::isTemp(src))
                        ci.tempReads++;
                }
                switch (in.op) {
                  case Op::LdRom:      ci.romReads++; break;
                  case Op::LdArg:      ci.constReads++; break;
                  case Op::LdGlobal: case Op::LdGlobalU8:
                    ci.globalLd++;
                    break;
                  case Op::StGlobal: case Op::StGlobalU8:
                    ci.globalSt++;
                    break;
                  case Op::AtomAddG:
                    ci.globalLd++;
                    ci.globalSt++;
                    break;
                  case Op::LdLocal:    ci.localLd++; break;
                  case Op::StLocal:    ci.localSt++; break;
                  case Op::AtomAddL:
                    ci.localLd++;
                    ci.localSt++;
                    break;
                  default:
                    break;
                }
            }
        }
        out.push_back(ci);
    }
    return out;
}

void
KernelStats::merge(const KernelStats &other)
{
    arithInstrs += other.arithInstrs;
    lsInstrs += other.lsInstrs;
    cfInstrs += other.cfInstrs;
    nopSlots += other.nopSlots;
    grfReads += other.grfReads;
    grfWrites += other.grfWrites;
    tempAccesses += other.tempAccesses;
    constReads += other.constReads;
    romReads += other.romReads;
    globalLdSt += other.globalLdSt;
    localLdSt += other.localLdSt;
    clausesExecuted += other.clausesExecuted;
    threadsLaunched += other.threadsLaunched;
    warpsLaunched += other.warpsLaunched;
    workgroups += other.workgroups;
    divergentBranches += other.divergentBranches;
    clauseSizes.merge(other.clauseSizes);
    for (const auto &[k, v] : other.cfgEdges)
        cfgEdges[k] += v;
}

void
KernelStats::subtract(const KernelStats &base)
{
    arithInstrs -= base.arithInstrs;
    lsInstrs -= base.lsInstrs;
    cfInstrs -= base.cfInstrs;
    nopSlots -= base.nopSlots;
    grfReads -= base.grfReads;
    grfWrites -= base.grfWrites;
    tempAccesses -= base.tempAccesses;
    constReads -= base.constReads;
    romReads -= base.romReads;
    globalLdSt -= base.globalLdSt;
    localLdSt -= base.localLdSt;
    clausesExecuted -= base.clausesExecuted;
    threadsLaunched -= base.threadsLaunched;
    warpsLaunched -= base.warpsLaunched;
    workgroups -= base.workgroups;
    divergentBranches -= base.divergentBranches;
    clauseSizes.subtract(base.clauseSizes);
    for (const auto &[k, v] : base.cfgEdges) {
        auto it = cfgEdges.find(k);
        it->second -= v;
        if (it->second == 0)
            cfgEdges.erase(it);
    }
}

void
saveStats(snapshot::ChunkWriter &w, const KernelStats &k)
{
    w.u64(k.arithInstrs);
    w.u64(k.lsInstrs);
    w.u64(k.cfInstrs);
    w.u64(k.nopSlots);
    w.u64(k.grfReads);
    w.u64(k.grfWrites);
    w.u64(k.tempAccesses);
    w.u64(k.constReads);
    w.u64(k.romReads);
    w.u64(k.globalLdSt);
    w.u64(k.localLdSt);
    w.u64(k.clausesExecuted);
    w.u64(k.threadsLaunched);
    w.u64(k.warpsLaunched);
    w.u64(k.workgroups);
    w.u64(k.divergentBranches);
    w.u32(static_cast<uint32_t>(k.clauseSizes.size()));
    for (size_t i = 0; i < k.clauseSizes.size(); ++i)
        w.u64(k.clauseSizes.count(i));
    w.u32(static_cast<uint32_t>(k.cfgEdges.size()));
    for (const auto &[key, count] : k.cfgEdges) {
        w.u64(key);
        w.u64(count);
    }
}

void
restoreStats(snapshot::ChunkReader &r, KernelStats &k)
{
    KernelStats s;
    s.arithInstrs = r.u64();
    s.lsInstrs = r.u64();
    s.cfInstrs = r.u64();
    s.nopSlots = r.u64();
    s.grfReads = r.u64();
    s.grfWrites = r.u64();
    s.tempAccesses = r.u64();
    s.constReads = r.u64();
    s.romReads = r.u64();
    s.globalLdSt = r.u64();
    s.localLdSt = r.u64();
    s.clausesExecuted = r.u64();
    s.threadsLaunched = r.u64();
    s.warpsLaunched = r.u64();
    s.workgroups = r.u64();
    s.divergentBranches = r.u64();
    uint32_t n_buckets = r.u32();
    if (static_cast<uint64_t>(n_buckets) * 8 > r.remaining())
        r.fail(strfmt("histogram bucket count %u exceeds chunk size",
                      n_buckets));
    s.clauseSizes = Histogram(n_buckets);
    for (uint32_t i = 0; i < n_buckets; ++i)
        s.clauseSizes.sample(static_cast<int64_t>(i), r.u64());
    uint32_t n_edges = r.u32();
    if (static_cast<uint64_t>(n_edges) * 16 > r.remaining())
        r.fail(strfmt("CFG edge count %u exceeds chunk size", n_edges));
    uint64_t prev_key = 0;
    for (uint32_t i = 0; i < n_edges; ++i) {
        uint64_t key = r.u64();
        if (i > 0 && key <= prev_key)
            r.fail(strfmt("CFG edge keys unordered at entry %u", i));
        prev_key = key;
        s.cfgEdges[key] = r.u64();
    }
    k = std::move(s);
}

void
saveStats(snapshot::ChunkWriter &w, const TlbStats &t)
{
    w.u64(t.lastPageHits);
    w.u64(t.arrayHits);
    w.u64(t.walks);
}

void
restoreStats(snapshot::ChunkReader &r, TlbStats &t)
{
    TlbStats s;
    s.lastPageHits = r.u64();
    s.arrayHits = r.u64();
    s.walks = r.u64();
    t = s;
}

void
saveStats(snapshot::ChunkWriter &w, const SystemStats &s)
{
    w.u64(s.pagesAccessed);
    w.u64(s.ctrlRegReads);
    w.u64(s.ctrlRegWrites);
    w.u64(s.irqsAsserted);
    w.u64(s.computeJobs);
}

void
restoreStats(snapshot::ChunkReader &r, SystemStats &s)
{
    SystemStats v;
    v.pagesAccessed = r.u64();
    v.ctrlRegReads = r.u64();
    v.ctrlRegWrites = r.u64();
    v.irqsAsserted = r.u64();
    v.computeJobs = r.u64();
    s = v;
}

void
appendCounters(std::vector<NamedCounter> &out, const KernelStats &k)
{
    out.push_back({"kernel.arith_instrs", k.arithInstrs});
    out.push_back({"kernel.ls_instrs", k.lsInstrs});
    out.push_back({"kernel.cf_instrs", k.cfInstrs});
    out.push_back({"kernel.nop_slots", k.nopSlots});
    out.push_back({"kernel.grf_reads", k.grfReads});
    out.push_back({"kernel.grf_writes", k.grfWrites});
    out.push_back({"kernel.temp_accesses", k.tempAccesses});
    out.push_back({"kernel.const_reads", k.constReads});
    out.push_back({"kernel.rom_reads", k.romReads});
    out.push_back({"kernel.global_ldst", k.globalLdSt});
    out.push_back({"kernel.local_ldst", k.localLdSt});
    out.push_back({"kernel.clauses_executed", k.clausesExecuted});
    out.push_back({"kernel.threads_launched", k.threadsLaunched});
    out.push_back({"kernel.warps_launched", k.warpsLaunched});
    out.push_back({"kernel.workgroups", k.workgroups});
    out.push_back({"kernel.divergent_branches", k.divergentBranches});
}

void
appendCounters(std::vector<NamedCounter> &out, const TlbStats &t)
{
    out.push_back({"tlb.last_page_hits", t.lastPageHits});
    out.push_back({"tlb.array_hits", t.arrayHits});
    out.push_back({"tlb.walks", t.walks});
}

void
appendCounters(std::vector<NamedCounter> &out, const SystemStats &s)
{
    out.push_back({"sys.pages_accessed", s.pagesAccessed});
    out.push_back({"sys.ctrl_reg_reads", s.ctrlRegReads});
    out.push_back({"sys.ctrl_reg_writes", s.ctrlRegWrites});
    out.push_back({"sys.irqs_asserted", s.irqsAsserted});
    out.push_back({"sys.compute_jobs", s.computeJobs});
}

void
appendCounters(std::vector<NamedCounter> &out, const SchedStats &s)
{
    out.push_back({"sched.slices_run", s.slicesRun});
    out.push_back({"sched.groups_run", s.groupsRun});
    out.push_back({"sched.steals", s.steals});
    out.push_back({"sched.steal_attempts", s.stealAttempts});
    out.push_back({"sched.shader_l1_hits", s.shaderL1Hits});
    out.push_back({"sched.shader_l2_fills", s.shaderL2Fills});
}

void
appendCounters(std::vector<NamedCounter> &out, const sa32::CoreStats &c)
{
    out.push_back({"cpu.instret", c.instret});
    out.push_back({"cpu.blocks_decoded", c.blocksDecoded});
    out.push_back({"cpu.block_hits", c.blockHits});
    out.push_back({"cpu.traps", c.traps});
    out.push_back({"cpu.interrupts", c.interrupts});
    out.push_back({"cpu.cache_flushes", c.cacheFlushes});
    out.push_back({"cpu.dbt_blocks", c.dbtBlocks});
    out.push_back({"cpu.dbt_chain_links", c.dbtChainLinks});
    out.push_back({"cpu.dbt_chain_follows", c.dbtChainFollows});
    out.push_back({"cpu.dbt_chain_breaks", c.dbtChainBreaks});
    out.push_back({"cpu.dbt_retires", c.dbtRetires});
}

void
appendCounters(std::vector<NamedCounter> &out, const fleet::FleetStats &f)
{
    out.push_back({"fleet.jobs_submitted", f.jobsSubmitted});
    out.push_back({"fleet.jobs_completed", f.jobsCompleted});
    out.push_back({"fleet.jobs_faulted", f.jobsFaulted});
    out.push_back({"fleet.jobs_rejected", f.jobsRejected});
    out.push_back({"fleet.jobs_bad_request", f.jobsBadRequest});
    out.push_back({"fleet.queue_ns_total", f.queueNsTotal});
    out.push_back({"fleet.exec_ns_total", f.execNsTotal});
    out.push_back({"fleet.queue_peak", f.queuePeak});
    out.push_back({"fleet.tenants_seen", f.tenantsSeen});
    out.push_back({"fleet.bytes_in", f.bytesIn});
    out.push_back({"fleet.bytes_out", f.bytesOut});
    out.push_back({"fleet.spawns", f.spawns});
    out.push_back({"fleet.recycles", f.recycles});
    out.push_back({"fleet.recycle_failures", f.recycleFailures});
    out.push_back({"fleet.acquire_waits", f.acquireWaits});
    out.push_back({"fleet.sessions_live", f.sessionsLive});
    out.push_back({"fleet.sessions_idle", f.sessionsIdle});
    out.push_back({"fleet.queue_depth", f.queueDepth});
}

void
appendCounters(std::vector<NamedCounter> &out,
               const metrics::RegistryStats &m)
{
    out.push_back({"metrics.publishes", m.publishes});
    out.push_back({"metrics.samples", m.samples});
    out.push_back({"metrics.reader_retries", m.readerRetries});
    out.push_back({"metrics.slots_dropped", m.slotsDropped});
    out.push_back({"metrics.shards", m.shards});
}

} // namespace bifsim::gpu
