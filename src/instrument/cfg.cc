#include "instrument/cfg.h"

#include <map>

#include "common/logging.h"

namespace bifsim::instrument {

Cfg
buildCfg(const gpu::KernelStats &stats)
{
    // Group edges by source clause.
    std::map<uint32_t, std::vector<CfgEdge>> by_src;
    for (const auto &[key, count] : stats.cfgEdges) {
        CfgEdge e;
        e.from = static_cast<uint32_t>(key >> 32);
        e.to = static_cast<uint32_t>(key & 0xffffffffu);
        e.threads = count;
        by_src[e.from].push_back(e);
    }

    Cfg cfg;
    for (auto &[src, edges] : by_src) {
        CfgNode node;
        node.clause = src;
        for (const CfgEdge &e : edges)
            node.outThreads += e.threads;
        unsigned taken = 0;
        for (CfgEdge &e : edges) {
            e.fraction = node.outThreads
                             ? static_cast<double>(e.threads) /
                                   static_cast<double>(node.outThreads)
                             : 0.0;
            if (e.threads > 0)
                taken++;
            cfg.edges.push_back(e);
        }
        node.divergent = taken > 1;
        cfg.nodes.push_back(node);
    }
    return cfg;
}

std::string
nodeLabel(uint32_t clause)
{
    if (clause == kCfgExit)
        return "exit";
    // Present clause ids as instruction addresses, matching the
    // paper's Fig. 6 rendering (clause stream base 0xaa000000,
    // 16 bytes per tuple slot pair).
    return strfmt("aa%06x", clause * 0x10 + 0x70);
}

std::string
toDot(const Cfg &cfg)
{
    std::string s = "digraph shader_cfg {\n"
                    "    node [shape=box, fontname=\"monospace\"];\n";
    for (const CfgNode &n : cfg.nodes) {
        s += strfmt("    \"%s\" [label=\"%s%s\"%s];\n",
                    nodeLabel(n.clause).c_str(),
                    nodeLabel(n.clause).c_str(),
                    n.divergent ? "\\n(divergent)" : "",
                    n.divergent ? ", style=filled, fillcolor=lightpink"
                                : "");
    }
    s += "    \"exit\" [shape=ellipse];\n";
    for (const CfgEdge &e : cfg.edges) {
        s += strfmt("    \"%s\" -> \"%s\" [label=\"%.2f%%\"];\n",
                    nodeLabel(e.from).c_str(), nodeLabel(e.to).c_str(),
                    e.fraction * 100.0);
    }
    s += "}\n";
    return s;
}

} // namespace bifsim::instrument
