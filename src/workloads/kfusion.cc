#include "workloads/kfusion.h"

#include <cmath>
#include <map>
#include <vector>

#include "common/logging.h"

namespace bifsim::workloads {

KFusionConfig
KFusionConfig::standard(uint32_t w, uint32_t h, uint32_t frames)
{
    KFusionConfig c;
    c.name = "standard";
    c.width = w;
    c.height = h;
    c.frames = frames;
    c.iters[0] = 10;
    c.iters[1] = 5;
    c.iters[2] = 4;
    c.bilateral = true;
    c.trackScale = 1;
    return c;
}

KFusionConfig
KFusionConfig::fast3(uint32_t w, uint32_t h, uint32_t frames)
{
    KFusionConfig c = standard(w, h, frames);
    c.name = "fast3";
    c.iters[0] = 4;
    c.iters[1] = 3;
    c.iters[2] = 3;
    c.trackScale = 2;
    return c;
}

KFusionConfig
KFusionConfig::express(uint32_t w, uint32_t h, uint32_t frames)
{
    KFusionConfig c = standard(w, h, frames);
    c.name = "express";
    c.iters[0] = 2;
    c.iters[1] = 2;
    c.iters[2] = 1;
    c.bilateral = false;
    c.trackScale = 4;
    return c;
}

const char *
kfusionSource()
{
    return R"(
// 3x3 bilateral filter on the raw depth map.
kernel void bilateral_filter(global const float* in, global float* out,
                             int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float center = in[y * w + x];
    if (x == 0 || y == 0 || x == w - 1 || y == h - 1 ||
        center == 0.0f) {
        out[y * w + x] = center;
        return;
    }
    float sum = 0.0f;
    float wsum = 0.0f;
    for (int dy = 0 - 1; dy <= 1; dy += 1) {
        for (int dx = 0 - 1; dx <= 1; dx += 1) {
            float v = in[(y + dy) * w + x + dx];
            float dr = v - center;
            float ds = (float)(dx * dx + dy * dy);
            float wgt = exp2(0.0f - (dr * dr * 50.0f + ds * 0.5f));
            sum += v * wgt;
            wsum += wgt;
        }
    }
    out[y * w + x] = sum / wsum;
}

// 2x2 average downsample.
kernel void half_sample(global const float* in, global float* out,
                        int inw, int outw) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float a = in[(2 * y) * inw + 2 * x];
    float b = in[(2 * y) * inw + 2 * x + 1];
    float c = in[(2 * y + 1) * inw + 2 * x];
    float d = in[(2 * y + 1) * inw + 2 * x + 1];
    out[y * outw + x] = (a + b + c + d) * 0.25f;
}

// Back-project depth to a 3D vertex map (pinhole camera).
kernel void depth2vertex(global const float* depth,
                         global float* vertex, int w, int h, float fx,
                         float fy, float cx, float cy) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float d = depth[y * w + x];
    int o = (y * w + x) * 3;
    vertex[o] = d * ((float)x - cx) / fx;
    vertex[o + 1] = d * ((float)y - cy) / fy;
    vertex[o + 2] = d;
}

// Normals from central differences of the vertex map.
kernel void vertex2normal(global const float* vertex,
                          global float* normal, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int o = (y * w + x) * 3;
    if (x == 0 || y == 0 || x == w - 1 || y == h - 1) {
        normal[o] = 0.0f;
        normal[o + 1] = 0.0f;
        normal[o + 2] = 0.0f;
        return;
    }
    int l = (y * w + x - 1) * 3;
    int r = (y * w + x + 1) * 3;
    int u = ((y - 1) * w + x) * 3;
    int d = ((y + 1) * w + x) * 3;
    float ax = vertex[r] - vertex[l];
    float ay = vertex[r + 1] - vertex[l + 1];
    float az = vertex[r + 2] - vertex[l + 2];
    float bx = vertex[d] - vertex[u];
    float by = vertex[d + 1] - vertex[u + 1];
    float bz = vertex[d + 2] - vertex[u + 2];
    float nx = ay * bz - az * by;
    float ny = az * bx - ax * bz;
    float nz = ax * by - ay * bx;
    float len2 = nx * nx + ny * ny + nz * nz;
    if (len2 > 0.0f) {
        float inv = rsqrt(len2);
        normal[o] = nx * inv;
        normal[o + 1] = ny * inv;
        normal[o + 2] = nz * inv;
    } else {
        normal[o] = 0.0f;
        normal[o + 1] = 0.0f;
        normal[o + 2] = 0.0f;
    }
}

// Point-to-plane ICP residual per pixel against the reference maps.
// output: 2 floats per pixel = {valid, error}.
kernel void track(global const float* vertex, global const float* normal,
                  global const float* refVertex,
                  global const float* refNormal, global float* output,
                  int w, int h, float distThresh) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int o = (y * w + x) * 3;
    int ro = (y * w + x) * 2;
    float nx = refNormal[o];
    float ny = refNormal[o + 1];
    float nz = refNormal[o + 2];
    float dx = refVertex[o] - vertex[o];
    float dy = refVertex[o + 1] - vertex[o + 1];
    float dz = refVertex[o + 2] - vertex[o + 2];
    float dist2 = dx * dx + dy * dy + dz * dz;
    if (dist2 > distThresh * distThresh ||
        (nx == 0.0f && ny == 0.0f && nz == 0.0f)) {
        output[ro] = 0.0f;
        output[ro + 1] = 0.0f;
        return;
    }
    float err = nx * dx + ny * dy + nz * dz;
    output[ro] = 1.0f;
    output[ro + 1] = err * err;
}

// Tree reduction of the track output: sums {valid, error} pairs.
kernel void reduce_track(global const float* input, global float* sums,
                         int n) {
    local float sv[128];
    local float se[128];
    int lid = get_local_id(0);
    int g = get_global_id(0);
    if (g < n) {
        sv[lid] = input[2 * g];
        se[lid] = input[2 * g + 1];
    } else {
        sv[lid] = 0.0f;
        se[lid] = 0.0f;
    }
    barrier();
    for (int s = get_local_size(0) / 2; s > 0; s = s / 2) {
        if (lid < s) {
            sv[lid] += sv[lid + s];
            se[lid] += se[lid + s];
        }
        barrier();
    }
    if (lid == 0) {
        sums[get_group_id(0) * 2] = sv[0];
        sums[get_group_id(0) * 2 + 1] = se[0];
    }
}

// TSDF integration: each thread walks one voxel column (orthographic
// projection keeps the mapping simple while preserving the access
// pattern: a 3D volume updated from a 2D depth image).
kernel void integrate(global float* volume, global const float* depth,
                      int vside, int w, int h, float voxelSize,
                      float mu) {
    int vx = get_global_id(0);
    int vy = get_global_id(1);
    int px = vx * w / vside;
    int py = vy * h / vside;
    float d = depth[py * w + px];
    for (int vz = 0; vz < vside; vz += 1) {
        float zpos = (float)vz * voxelSize;
        float sdf = d - zpos;
        if (sdf > 0.0f - mu) {
            float tsdf = fmin(1.0f, sdf / mu);
            int idx = (vz * vside + vy) * vside + vx;
            float old = volume[idx];
            volume[idx] = (old + tsdf) * 0.5f;
        }
    }
}
)";
}

KFusionResult
runKFusion(rt::Session &session, const KFusionConfig &cfg)
{
    KFusionResult res;
    rt::Session &s = session;
    s.system().gpu().resetStats();

    uint32_t w = cfg.width, h = cfg.height;
    if (w % 32 != 0 || h % 32 != 0) {
        res.error = "width/height must be multiples of 32";
        return res;
    }

    // Compile all kernels once (the vendor stack would JIT at first
    // enqueue; kclc does the same work here).
    const char *src = kfusionSource();
    std::map<std::string, rt::KernelHandle> k;
    for (const char *name :
         {"bilateral_filter", "half_sample", "depth2vertex",
          "vertex2normal", "track", "reduce_track", "integrate"}) {
        k[name] = s.compile(src, name);
    }

    auto pix = [&](uint32_t level) {
        return (w >> level) * (h >> level);
    };

    // Buffers: depth pyramid, vertex/normal pyramids (3 levels),
    // reference maps, track output, reduction sums, volume.
    rt::Buffer rawDepth = s.alloc(pix(0) * 4);
    rt::Buffer filtered = s.alloc(pix(0) * 4);
    rt::Buffer depthPyr[3] = {filtered, s.alloc(pix(1) * 4),
                              s.alloc(pix(2) * 4)};
    rt::Buffer vertexPyr[3], normalPyr[3], refVertex[3], refNormal[3];
    for (int l = 0; l < 3; ++l) {
        vertexPyr[l] = s.alloc(pix(l) * 12);
        normalPyr[l] = s.alloc(pix(l) * 12);
        refVertex[l] = s.alloc(pix(l) * 12);
        refNormal[l] = s.alloc(pix(l) * 12);
    }
    rt::Buffer trackOut = s.alloc(pix(0) * 8);
    uint32_t max_groups = (pix(0) + 127) / 128;
    rt::Buffer sums = s.alloc(max_groups * 8);
    rt::Buffer volume =
        s.alloc(static_cast<size_t>(cfg.volume) * cfg.volume *
                cfg.volume * 4);

    const float fx = 0.75f * static_cast<float>(w);
    const float fy = 0.75f * static_cast<float>(h);

    auto fail = [&](const gpu::JobResult &jr) {
        res.error = jr.fault.detail;
        return res;
    };
    auto launch2d = [&](const char *name, uint32_t lw, uint32_t lh,
                        std::vector<rt::Arg> args) {
        res.kernelLaunches++;
        return s.enqueue(k[name], rt::NDRange{lw, lh, 1},
                         rt::NDRange{8, 8, 1}, args);
    };

    double track_error = 0.0;
    for (uint32_t frame = 0; frame < cfg.frames; ++frame) {
        // Synthetic depth input: a slowly moving sphere over a plane.
        std::vector<float> depth(pix(0));
        float t = static_cast<float>(frame) * 0.05f;
        for (uint32_t y = 0; y < h; ++y) {
            for (uint32_t x = 0; x < w; ++x) {
                float u = static_cast<float>(x) / w - 0.5f - t * 0.1f;
                float v = static_cast<float>(y) / h - 0.5f;
                float r2 = u * u + v * v;
                float d = 2.0f;   // background plane
                if (r2 < 0.09f)
                    d = 1.2f - std::sqrt(0.09f - r2);
                depth[y * w + x] = d + t;
            }
        }
        s.write(rawDepth, depth.data(), depth.size() * 4);

        // 1. Preprocess.
        if (cfg.bilateral) {
            gpu::JobResult jr = launch2d(
                "bilateral_filter", w, h,
                {rt::Arg::buf(rawDepth), rt::Arg::buf(filtered),
                 rt::Arg::i32(w), rt::Arg::i32(h)});
            if (jr.faulted)
                return fail(jr);
        } else {
            std::vector<float> copy = depth;
            s.write(filtered, copy.data(), copy.size() * 4);
        }

        // 2. Pyramid.
        for (int l = 1; l < 3; ++l) {
            gpu::JobResult jr = launch2d(
                "half_sample", w >> l, h >> l,
                {rt::Arg::buf(depthPyr[l - 1]), rt::Arg::buf(depthPyr[l]),
                 rt::Arg::i32(w >> (l - 1)), rt::Arg::i32(w >> l)});
            if (jr.faulted)
                return fail(jr);
        }

        // 3. Vertex and normal maps per level.
        for (int l = 0; l < 3; ++l) {
            uint32_t lw = w >> l, lh = h >> l;
            gpu::JobResult jr = launch2d(
                "depth2vertex", lw, lh,
                {rt::Arg::buf(depthPyr[l]), rt::Arg::buf(vertexPyr[l]),
                 rt::Arg::i32(lw), rt::Arg::i32(lh),
                 rt::Arg::f32(fx / static_cast<float>(1 << l)),
                 rt::Arg::f32(fy / static_cast<float>(1 << l)),
                 rt::Arg::f32(static_cast<float>(lw) / 2),
                 rt::Arg::f32(static_cast<float>(lh) / 2)});
            if (jr.faulted)
                return fail(jr);
            jr = launch2d("vertex2normal", lw, lh,
                          {rt::Arg::buf(vertexPyr[l]),
                           rt::Arg::buf(normalPyr[l]), rt::Arg::i32(lw),
                           rt::Arg::i32(lh)});
            if (jr.faulted)
                return fail(jr);
        }

        // 4. ICP tracking against the previous frame (first frame
        //    tracks against itself), coarse to fine.
        if (frame == 0) {
            for (int l = 0; l < 3; ++l) {
                std::vector<float> tmp(pix(l) * 3);
                s.read(vertexPyr[l], tmp.data(), tmp.size() * 4);
                s.write(refVertex[l], tmp.data(), tmp.size() * 4);
                s.read(normalPyr[l], tmp.data(), tmp.size() * 4);
                s.write(refNormal[l], tmp.data(), tmp.size() * 4);
            }
        }
        for (int l = 2; l >= 0; --l) {
            uint32_t lw = w >> l, lh = h >> l;
            // The fast/express presets track at reduced resolution:
            // emulate by skipping the finest level(s).
            if (cfg.trackScale >= 2 && l == 0)
                continue;
            if (cfg.trackScale >= 4 && l <= 1)
                continue;
            for (uint32_t it = 0; it < cfg.iters[l]; ++it) {
                gpu::JobResult jr = launch2d(
                    "track", lw, lh,
                    {rt::Arg::buf(vertexPyr[l]),
                     rt::Arg::buf(normalPyr[l]),
                     rt::Arg::buf(refVertex[l]),
                     rt::Arg::buf(refNormal[l]), rt::Arg::buf(trackOut),
                     rt::Arg::i32(lw), rt::Arg::i32(lh),
                     rt::Arg::f32(0.5f)});
                if (jr.faulted)
                    return fail(jr);
                uint32_t n = lw * lh;
                uint32_t groups = (n + 127) / 128;
                res.kernelLaunches++;
                jr = s.enqueue(k["reduce_track"],
                               rt::NDRange{groups * 128, 1, 1},
                               rt::NDRange{128, 1, 1},
                               {rt::Arg::buf(trackOut),
                                rt::Arg::buf(sums),
                                rt::Arg::i32(static_cast<int32_t>(n))});
                if (jr.faulted)
                    return fail(jr);
                std::vector<float> partial(groups * 2);
                s.read(sums, partial.data(), partial.size() * 4);
                double valid = 0, err = 0;
                for (uint32_t g2 = 0; g2 < groups; ++g2) {
                    valid += partial[g2 * 2];
                    err += partial[g2 * 2 + 1];
                }
                track_error = valid > 0 ? err / valid : 0.0;
            }
        }

        // 5. Update the reference maps with this frame's.
        for (int l = 0; l < 3; ++l) {
            std::vector<float> tmp(pix(l) * 3);
            s.read(vertexPyr[l], tmp.data(), tmp.size() * 4);
            s.write(refVertex[l], tmp.data(), tmp.size() * 4);
            s.read(normalPyr[l], tmp.data(), tmp.size() * 4);
            s.write(refNormal[l], tmp.data(), tmp.size() * 4);
        }

        // 6. Integrate the depth into the TSDF volume.
        res.kernelLaunches++;
        gpu::JobResult jr = s.enqueue(
            k["integrate"], rt::NDRange{cfg.volume, cfg.volume, 1},
            rt::NDRange{8, 8, 1},
            {rt::Arg::buf(volume), rt::Arg::buf(filtered),
             rt::Arg::i32(static_cast<int32_t>(cfg.volume)),
             rt::Arg::i32(w), rt::Arg::i32(h), rt::Arg::f32(0.1f),
             rt::Arg::f32(0.3f)});
        if (jr.faulted)
            return fail(jr);
    }

    res.kernel = s.system().gpu().totalKernelStats();
    res.system = s.system().gpu().systemStats();
    res.trackError = track_error;
    res.ok = true;
    return res;
}

} // namespace bifsim::workloads
