#ifndef BIFSIM_WORKLOADS_COST_MODEL_H
#define BIFSIM_WORKLOADS_COST_MODEL_H

/**
 * @file
 * Simple architecture cost models over the simulator's instruction-
 * accurate statistics.
 *
 * The paper compares simulated Mali metrics against *measured* runtimes
 * on a Mali-G71 and an NVIDIA K20m (Fig. 15).  Without that hardware we
 * substitute two parameterised cost models capturing the architectural
 * contrast the paper highlights: on the mobile GPU, main-memory traffic
 * is dramatically more expensive than local-memory traffic (data
 * movement dominates, per [29]); on the desktop GPU, high-bandwidth
 * coalesced global memory makes the same traffic cheap while raw issue
 * count matters more.  The *shape* claims (which SGEMM variant wins,
 * lack of correlation between targets) derive from these relative
 * weights, not from absolute calibration.
 */

#include "instrument/stats.h"

namespace bifsim::workloads {

/** Per-event weights (arbitrary time units). */
struct CostModel
{
    double arith = 1.0;
    double globalLs = 1.0;
    double localLs = 1.0;
    double controlFlow = 1.0;
    double emptySlot = 0.5;
    double constRead = 0.2;
    double romRead = 0.2;
    double grf = 0.05;
    double temp = 0.01;
};

/** Mobile (Mali-like) weights: main memory is the bottleneck. */
inline CostModel
maliCostModel()
{
    CostModel m;
    m.arith = 1.0;
    m.globalLs = 40.0;    // DRAM on a phone SoC: narrow, power-limited.
    m.localLs = 2.0;      // Core-local storage.
    m.controlFlow = 2.0;
    m.emptySlot = 1.0;    // Issue slots are wasted cycles.
    m.grf = 0.2;          // Register-file energy/port pressure.
    m.temp = 0.02;        // Clause temporaries bypass the GRF.
    return m;
}

/** Desktop (discrete-GPU-like) weights: bandwidth is plentiful. */
inline CostModel
desktopCostModel()
{
    CostModel m;
    m.arith = 0.25;       // Many more ALUs.
    m.globalLs = 1.5;     // Wide GDDR, coalescing hardware.
    m.localLs = 1.0;      // Shared memory about as fast as L1.
    m.controlFlow = 1.0;
    m.emptySlot = 0.0;    // No clause/dual-issue model.
    m.grf = 0.02;
    m.temp = 0.02;
    return m;
}

/** Evaluates a model over kernel statistics. */
inline double
evalCost(const gpu::KernelStats &ks, const CostModel &m)
{
    return m.arith * static_cast<double>(ks.arithInstrs) +
           m.globalLs * static_cast<double>(ks.globalLdSt) +
           m.localLs * static_cast<double>(ks.localLdSt) +
           m.controlFlow * static_cast<double>(ks.cfInstrs) +
           m.emptySlot * static_cast<double>(ks.nopSlots) +
           m.constRead * static_cast<double>(ks.constReads) +
           m.romRead * static_cast<double>(ks.romReads) +
           m.grf * static_cast<double>(ks.grfReads + ks.grfWrites) +
           m.temp * static_cast<double>(ks.tempAccesses);
}

} // namespace bifsim::workloads

#endif // BIFSIM_WORKLOADS_COST_MODEL_H
