#ifndef BIFSIM_WORKLOADS_DEVICE_H
#define BIFSIM_WORKLOADS_DEVICE_H

/**
 * @file
 * A small device abstraction so every benchmark workload can run
 * unmodified on either the full simulator (rt::Session, in direct or
 * full-system mode) or on the Multi2Sim-style baseline (m2ssim) for
 * the Fig. 8/9 comparisons.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/m2ssim.h"
#include "kclc/compiler.h"
#include "runtime/session.h"

namespace bifsim::workloads {

/** A device buffer handle (GPU VA on the simulator, offset on m2s). */
using BufHandle = uint32_t;

/** A kernel launch argument. */
struct WArg
{
    enum class Kind : uint8_t { Buf, I32, U32, F32 };

    Kind kind;
    uint32_t value;

    static WArg
    buf(BufHandle h)
    {
        return {Kind::Buf, h};
    }

    static WArg
    i32(int32_t v)
    {
        return {Kind::I32, static_cast<uint32_t>(v)};
    }

    static WArg
    u32(uint32_t v)
    {
        return {Kind::U32, v};
    }

    static WArg f32(float v);
};

/** Launch dimensions. */
struct Dim3
{
    uint32_t x = 1, y = 1, z = 1;
};

/** The device interface workloads program against. */
class Device
{
  public:
    virtual ~Device() = default;

    /** Compiles all kernels in @p source with @p opts. */
    virtual void build(const std::string &source,
                       const kclc::CompilerOptions &opts) = 0;

    virtual BufHandle alloc(size_t bytes) = 0;
    virtual void write(BufHandle b, const void *src, size_t len,
                       size_t offset = 0) = 0;
    virtual void read(BufHandle b, void *dst, size_t len,
                      size_t offset = 0) = 0;

    /**
     * Launches a built kernel and waits for completion.
     * @return false on any fault (message in @p error).
     */
    virtual bool launch(const std::string &kernel, Dim3 global,
                        Dim3 local, const std::vector<WArg> &args,
                        std::string &error) = 0;

    /** Number of launches so far. */
    uint64_t launches() const { return launches_; }

  protected:
    uint64_t launches_ = 0;
};

/** Device backed by the full simulator. */
class SessionDevice : public Device
{
  public:
    explicit SessionDevice(rt::Session &session) : session_(session) {}

    void build(const std::string &source,
               const kclc::CompilerOptions &opts) override;
    BufHandle alloc(size_t bytes) override;
    void write(BufHandle b, const void *src, size_t len,
               size_t offset) override;
    void read(BufHandle b, void *dst, size_t len, size_t offset) override;
    bool launch(const std::string &kernel, Dim3 global, Dim3 local,
                const std::vector<WArg> &args,
                std::string &error) override;

    rt::Session &session() { return session_; }

  private:
    rt::Session &session_;
    std::map<std::string, rt::KernelHandle> kernels_;
    std::map<BufHandle, rt::Buffer> buffers_;
};

/** Device backed by the Multi2Sim-style baseline. */
class M2sDevice : public Device
{
  public:
    explicit M2sDevice(baseline::M2sSim &sim) : sim_(sim) {}

    void build(const std::string &source,
               const kclc::CompilerOptions &opts) override;
    BufHandle alloc(size_t bytes) override;
    void write(BufHandle b, const void *src, size_t len,
               size_t offset) override;
    void read(BufHandle b, void *dst, size_t len, size_t offset) override;
    bool launch(const std::string &kernel, Dim3 global, Dim3 local,
                const std::vector<WArg> &args,
                std::string &error) override;

  private:
    baseline::M2sSim &sim_;
    std::map<std::string, std::vector<uint8_t>> binaries_;
};

} // namespace bifsim::workloads

#endif // BIFSIM_WORKLOADS_DEVICE_H
