#ifndef BIFSIM_WORKLOADS_SGEMM_VARIANTS_H
#define BIFSIM_WORKLOADS_SGEMM_VARIANTS_H

/**
 * @file
 * The six SGEMM kernels of Fig. 15 (after Nugteren's myGEMM
 * progression): iteratively optimised *for desktop GPUs*, used to show
 * that desktop-targeted optimisations do not transfer to the mobile
 * GPU — speedups on the two architectures are uncorrelated, the Mali
 * optimum is the variant that (almost) eliminates main-memory traffic,
 * and the most register-hungry variant is the Mali worst case.
 *
 *   1 Naive            one thread per element, all-global accesses
 *   2 LocalMemTiling   16x16 tiles staged in local memory
 *   3 MoreWork/Thread  4 outputs per thread
 *   4 WiderDataTypes   32-wide tiles, 4-element (float4-like) accesses
 *   5 TransInput       tiling over a pre-transposed B
 *   6 2DRegBlocking    2x2 register blocking, no local memory
 */

#include <cstdint>
#include <string>
#include <vector>

#include "instrument/stats.h"
#include "kclc/compiler.h"
#include "runtime/session.h"

namespace bifsim::workloads {

/** Result for one variant. */
struct SgemmVariantResult
{
    std::string name;
    bool ok = false;
    std::string error;
    gpu::KernelStats stats;
    uint32_t regCount = 0;
};

/** Display names, variant 1 first. */
std::vector<std::string> sgemmVariantNames();

/** The KCL source holding all six kernels. */
const char *sgemmVariantsSource();

/**
 * Runs all six variants on @p session with square size @p n (multiple
 * of 32), verifying each against the host product.
 */
std::vector<SgemmVariantResult> runSgemmVariants(
    rt::Session &session, uint32_t n,
    const kclc::CompilerOptions &opts = kclc::CompilerOptions());

} // namespace bifsim::workloads

#endif // BIFSIM_WORKLOADS_SGEMM_VARIANTS_H
