#include "workloads/device.h"

#include <bit>

#include "common/logging.h"

namespace bifsim::workloads {

WArg
WArg::f32(float v)
{
    return {Kind::F32, std::bit_cast<uint32_t>(v)};
}

// -------------------------------------------------------- SessionDevice

void
SessionDevice::build(const std::string &source,
                     const kclc::CompilerOptions &opts)
{
    for (kclc::CompiledKernel &k : kclc::compileAll(source, opts)) {
        std::string name = k.name;
        kernels_[name] = session_.load(k);
    }
}

BufHandle
SessionDevice::alloc(size_t bytes)
{
    rt::Buffer b = session_.alloc(bytes);
    buffers_[b.gpuVa] = b;
    return b.gpuVa;
}

void
SessionDevice::write(BufHandle h, const void *src, size_t len,
                     size_t offset)
{
    session_.write(buffers_.at(h), src, len, offset);
}

void
SessionDevice::read(BufHandle h, void *dst, size_t len, size_t offset)
{
    session_.read(buffers_.at(h), dst, len, offset);
}

bool
SessionDevice::launch(const std::string &kernel, Dim3 global, Dim3 local,
                      const std::vector<WArg> &args, std::string &error)
{
    auto it = kernels_.find(kernel);
    if (it == kernels_.end()) {
        error = "kernel not built: " + kernel;
        return false;
    }
    std::vector<rt::Arg> rargs;
    rargs.reserve(args.size());
    for (const WArg &a : args) {
        rt::Arg r;
        r.kind = a.kind == WArg::Kind::Buf ? rt::Arg::Kind::Buf
               : a.kind == WArg::Kind::F32 ? rt::Arg::Kind::F32
               : a.kind == WArg::Kind::U32 ? rt::Arg::Kind::U32
                                           : rt::Arg::Kind::I32;
        r.value = a.value;
        rargs.push_back(r);
    }
    launches_++;
    gpu::JobResult res = session_.enqueue(
        it->second, rt::NDRange{global.x, global.y, global.z},
        rt::NDRange{local.x, local.y, local.z}, rargs);
    if (res.faulted) {
        error = strfmt("GPU fault (%s, va=0x%x)", res.fault.detail.c_str(),
                       res.fault.va);
        return false;
    }
    return true;
}

// ------------------------------------------------------------ M2sDevice

void
M2sDevice::build(const std::string &source,
                 const kclc::CompilerOptions &opts)
{
    for (kclc::CompiledKernel &k : kclc::compileAll(source, opts))
        binaries_[k.name] = k.binary;
}

BufHandle
M2sDevice::alloc(size_t bytes)
{
    return sim_.alloc(bytes);
}

void
M2sDevice::write(BufHandle h, const void *src, size_t len, size_t offset)
{
    sim_.write(h + static_cast<uint32_t>(offset), src, len);
}

void
M2sDevice::read(BufHandle h, void *dst, size_t len, size_t offset)
{
    sim_.read(h + static_cast<uint32_t>(offset), dst, len);
}

bool
M2sDevice::launch(const std::string &kernel, Dim3 global, Dim3 local,
                  const std::vector<WArg> &args, std::string &error)
{
    auto it = binaries_.find(kernel);
    if (it == binaries_.end()) {
        error = "kernel not built: " + kernel;
        return false;
    }
    std::vector<uint32_t> raw;
    raw.reserve(args.size());
    for (const WArg &a : args)
        raw.push_back(a.value);
    uint32_t grid[3] = {global.x, global.y, global.z};
    uint32_t wg[3] = {local.x, local.y, local.z};
    launches_++;
    return sim_.launch(it->second, grid, wg, raw, error);
}

} // namespace bifsim::workloads
