#ifndef BIFSIM_WORKLOADS_WORKLOAD_H
#define BIFSIM_WORKLOADS_WORKLOAD_H

/**
 * @file
 * The benchmark workloads of Table II.
 *
 * Every workload owns its input generation, kernel source, launch
 * schedule (some are iterative with host-side control), output
 * verification, and a host-native reference implementation used both
 * for checking results and as the "native execution" time base of
 * Fig. 7.
 *
 * Default sizes are scaled-down versions of Table II so the whole
 * suite runs in seconds on a laptop-class host; `scale = 1.0`
 * reproduces the paper's sizes where feasible.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/device.h"

namespace bifsim::workloads {

/** Result of one full workload run. */
struct RunResult
{
    bool ok = false;           ///< Launches succeeded and output verified.
    std::string error;         ///< Failure description.
    uint64_t launches = 0;     ///< Kernel launches performed.
};

/** Base class for benchmark workloads. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Canonical lower-case name (e.g. "sobelfilter"). */
    virtual std::string name() const = 0;

    /** KCL source containing all of the workload's kernels. */
    virtual std::string source() const = 0;

    /**
     * Runs the workload on @p dev (which must have had build() called
     * with source()), verifying device results against the host
     * reference.
     */
    virtual RunResult run(Device &dev) = 0;

    /**
     * Executes the same computation natively on the host (the Fig. 7
     * "native" time base).  Returns a checksum so the work cannot be
     * optimised away.
     */
    virtual double runNative() = 0;

  protected:
    /** Deterministic pseudo-random stream for input generation. */
    class Rng
    {
      public:
        explicit Rng(uint64_t seed = 0x2545F4914F6CDD1Dull)
            : state_(seed)
        {
        }

        uint32_t
        next()
        {
            state_ ^= state_ << 13;
            state_ ^= state_ >> 7;
            state_ ^= state_ << 17;
            return static_cast<uint32_t>(state_ >> 32);
        }

        /** Uniform float in [0, 1). */
        float
        nextFloat()
        {
            return static_cast<float>(next() & 0xffffff) /
                   16777216.0f;
        }

        /** Uniform integer in [0, n). */
        uint32_t nextBelow(uint32_t n) { return n ? next() % n : 0; }

      private:
        uint64_t state_;
    };

    /** Relative-error float comparison for verification. */
    static bool
    closeEnough(float a, float b, float tol = 2e-4f)
    {
        float diff = a > b ? a - b : b - a;
        float mag = (a < 0 ? -a : a) + (b < 0 ? -b : b);
        return diff <= tol * (mag + 1.0f);
    }
};

/** Creates a workload by name (scale shrinks/grows the input sizes). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       double scale = 0.05);

/** All Table II workload names (canonical order of Figs. 11-13). */
std::vector<std::string> allWorkloadNames();

/** The subset used by Fig. 7 (AMD APP benchmarks). */
std::vector<std::string> fig7WorkloadNames();

/** The subset used by Fig. 8. */
std::vector<std::string> fig8WorkloadNames();

} // namespace bifsim::workloads

#endif // BIFSIM_WORKLOADS_WORKLOAD_H
