/**
 * @file
 * Table II workloads from Parboil and Rodinia: backprop, bfs, cutcp,
 * nearest neighbor, sgemm, spmv, stencil — the "larger, more complex"
 * workloads of the paper's evaluation (§V).
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "workloads/workload.h"

namespace bifsim::workloads {

namespace {

uint32_t
scaled(uint32_t paper, double scale, uint32_t floor_val,
       uint32_t multiple)
{
    auto v = static_cast<uint32_t>(paper * scale);
    v = std::max(v, floor_val);
    v = (v / multiple) * multiple;
    return std::max(v, multiple);
}

} // namespace

// ============================================================= BackProp

/** Rodinia back propagation: staged weight products in local memory
 *  with a tree reduction, plus a weight-adjust kernel.  The suite's
 *  most main-memory-bound workload (Fig. 12). */
class BackProp final : public Workload
{
  public:
    explicit BackProp(double scale)
    {
        inN_ = scaled(65536, scale, 1024, 16);
        hid_ = 16;
        Rng rng(61);
        input_.resize(inN_ + 1);
        for (float &v : input_)
            v = rng.nextFloat();
        weights_.resize(static_cast<size_t>(inN_ + 1) * (hid_ + 1));
        for (float &v : weights_)
            v = rng.nextFloat() - 0.5f;
        delta_.resize(hid_ + 1);
        for (float &v : delta_)
            v = rng.nextFloat() - 0.5f;
    }

    std::string name() const override { return "backprop"; }

    std::string
    source() const override
    {
        return R"(
kernel void bpnn_layerforward(global const float* input,
                              global float* partial,
                              global const float* weights, int hid) {
    local float input_node[16];
    local float weight_matrix[256];
    int by = get_group_id(1);
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    if (tx == 0) {
        input_node[ty] = input[16 * by + ty + 1];
    }
    barrier();
    int index = (hid + 1) * 16 * by + (hid + 1) * ty + tx + 1 +
                (hid + 1);
    weight_matrix[ty * 16 + tx] = weights[index] * input_node[ty];
    barrier();
    for (int i = 1; i <= 4; i += 1) {
        int pw = 1 << i;
        if (ty % pw == 0) {
            weight_matrix[ty * 16 + tx] +=
                weight_matrix[(ty + pw / 2) * 16 + tx];
        }
        barrier();
    }
    if (ty == 0) {
        partial[by * 16 + tx] = weight_matrix[tx];
    }
}

kernel void bpnn_adjust_weights(global float* weights,
                                global const float* delta,
                                global const float* ly, int hid) {
    int by = get_group_id(1);
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    int index = (hid + 1) * 16 * by + (hid + 1) * ty + tx + 1 +
                (hid + 1);
    weights[index] += 0.3f * delta[tx + 1] * ly[16 * by + ty + 1];
}
)";
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        uint32_t blocks = inN_ / 16;
        BufHandle din = dev.alloc(input_.size() * 4);
        BufHandle dw = dev.alloc(weights_.size() * 4);
        BufHandle dpart = dev.alloc(static_cast<size_t>(blocks) * 16 * 4);
        BufHandle ddelta = dev.alloc(delta_.size() * 4);
        dev.write(din, input_.data(), input_.size() * 4);
        dev.write(dw, weights_.data(), weights_.size() * 4);
        dev.write(ddelta, delta_.data(), delta_.size() * 4);

        std::string err;
        if (!dev.launch("bpnn_layerforward", Dim3{16, blocks * 16, 1},
                        Dim3{16, 16, 1},
                        {WArg::buf(din), WArg::buf(dpart), WArg::buf(dw),
                         WArg::i32(static_cast<int32_t>(hid_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> partial(static_cast<size_t>(blocks) * 16);
        dev.read(dpart, partial.data(), partial.size() * 4);

        // Verify the forward pass against the host reference.
        for (uint32_t b = 0; b < blocks; ++b) {
            for (uint32_t tx = 0; tx < 16; ++tx) {
                float want = 0;
                for (uint32_t ty = 0; ty < 16; ++ty) {
                    uint32_t index = (hid_ + 1) * 16 * b +
                                     (hid_ + 1) * ty + tx + 1 +
                                     (hid_ + 1);
                    want += weights_[index] * input_[16 * b + ty + 1];
                }
                if (!closeEnough(partial[b * 16 + tx], want, 1e-3f)) {
                    rr.error = strfmt("partial[%u,%u] mismatch", b, tx);
                    return rr;
                }
            }
        }

        if (!dev.launch("bpnn_adjust_weights", Dim3{16, blocks * 16, 1},
                        Dim3{16, 16, 1},
                        {WArg::buf(dw), WArg::buf(ddelta), WArg::buf(din),
                         WArg::i32(static_cast<int32_t>(hid_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(weights_.size());
        dev.read(dw, got.data(), got.size() * 4);
        for (uint32_t b = 0; b < blocks; ++b) {
            for (uint32_t ty = 0; ty < 16; ++ty) {
                for (uint32_t tx = 0; tx < 16; ++tx) {
                    uint32_t index = (hid_ + 1) * 16 * b +
                                     (hid_ + 1) * ty + tx + 1 +
                                     (hid_ + 1);
                    float want = weights_[index] +
                                 0.3f * delta_[tx + 1] *
                                     input_[16 * b + ty + 1];
                    if (!closeEnough(got[index], want, 1e-3f)) {
                        rr.error = "weight adjust mismatch";
                        return rr;
                    }
                }
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        double sum = 0;
        uint32_t blocks = inN_ / 16;
        for (uint32_t b = 0; b < blocks; ++b) {
            for (uint32_t tx = 0; tx < 16; ++tx) {
                float acc = 0;
                for (uint32_t ty = 0; ty < 16; ++ty) {
                    uint32_t index = (hid_ + 1) * 16 * b +
                                     (hid_ + 1) * ty + tx + 1 +
                                     (hid_ + 1);
                    acc += weights_[index] * input_[16 * b + ty + 1];
                }
                sum += acc;
            }
        }
        return sum;
    }

  private:
    uint32_t inN_, hid_;
    std::vector<float> input_, weights_, delta_;
};

// ================================================================== BFS

/** Parboil breadth-first search: level-synchronous expansion with a
 *  host-side convergence loop — one compute job per level, the
 *  divergence showcase of Fig. 6 and the job-heavy row of Table III. */
class Bfs final : public Workload
{
  public:
    explicit Bfs(double scale)
    {
        n_ = scaled(1257001, scale, 4096, 64);
        Rng rng(67);
        // Random connected graph: a tree plus extra edges (~6/node).
        std::vector<std::vector<int32_t>> adj(n_);
        for (uint32_t v = 1; v < n_; ++v) {
            uint32_t p = rng.nextBelow(v);
            adj[p].push_back(static_cast<int32_t>(v));
            adj[v].push_back(static_cast<int32_t>(p));
        }
        for (uint32_t e = 0; e < n_ * 2; ++e) {
            uint32_t a = rng.nextBelow(n_), b = rng.nextBelow(n_);
            if (a != b) {
                adj[a].push_back(static_cast<int32_t>(b));
                adj[b].push_back(static_cast<int32_t>(a));
            }
        }
        rowptr_.resize(n_ + 1);
        for (uint32_t v = 0; v < n_; ++v) {
            rowptr_[v + 1] = rowptr_[v] +
                             static_cast<int32_t>(adj[v].size());
            for (int32_t u : adj[v])
                cols_.push_back(u);
        }
    }

    std::string name() const override { return "bfs"; }

    std::string
    source() const override
    {
        return R"(
kernel void bfs_step(global const int* rowptr, global const int* cols,
                     global int* cost, global int* changed, int level,
                     int n) {
    int v = get_global_id(0);
    if (v < n && cost[v] == level) {
        for (int e = rowptr[v]; e < rowptr[v + 1]; e += 1) {
            int u = cols[e];
            if (cost[u] < 0) {
                cost[u] = level + 1;
                changed[0] = 1;
            }
        }
    }
}
)";
    }

    std::vector<int32_t>
    reference() const
    {
        std::vector<int32_t> cost(n_, -1);
        cost[0] = 0;
        std::vector<uint32_t> frontier = {0};
        int32_t level = 0;
        while (!frontier.empty()) {
            std::vector<uint32_t> next;
            for (uint32_t v : frontier) {
                for (int32_t e = rowptr_[v]; e < rowptr_[v + 1]; ++e) {
                    int32_t u = cols_[e];
                    if (cost[u] < 0) {
                        cost[u] = level + 1;
                        next.push_back(static_cast<uint32_t>(u));
                    }
                }
            }
            frontier = std::move(next);
            level++;
        }
        return cost;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        BufHandle drow = dev.alloc(rowptr_.size() * 4);
        BufHandle dcols = dev.alloc(std::max<size_t>(cols_.size(), 1) * 4);
        BufHandle dcost = dev.alloc(n_ * 4);
        BufHandle dchanged = dev.alloc(4);
        dev.write(drow, rowptr_.data(), rowptr_.size() * 4);
        dev.write(dcols, cols_.data(), cols_.size() * 4);
        std::vector<int32_t> cost(n_, -1);
        cost[0] = 0;
        dev.write(dcost, cost.data(), n_ * 4);

        uint32_t threads = ((n_ + 63) / 64) * 64;
        for (int32_t level = 0;; ++level) {
            int32_t zero = 0;
            dev.write(dchanged, &zero, 4);
            std::string err;
            if (!dev.launch("bfs_step", Dim3{threads, 1, 1},
                            Dim3{64, 1, 1},
                            {WArg::buf(drow), WArg::buf(dcols),
                             WArg::buf(dcost), WArg::buf(dchanged),
                             WArg::i32(level),
                             WArg::i32(static_cast<int32_t>(n_))},
                            err)) {
                rr.error = err;
                return rr;
            }
            int32_t changed = 0;
            dev.read(dchanged, &changed, 4);
            if (!changed)
                break;
            if (level > static_cast<int32_t>(n_)) {
                rr.error = "BFS did not converge";
                return rr;
            }
        }
        std::vector<int32_t> got(n_);
        dev.read(dcost, got.data(), n_ * 4);
        if (got != reference()) {
            rr.error = "BFS levels mismatch";
            return rr;
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<int32_t> cost = reference();
        double s = 0;
        for (int32_t c : cost)
            s += c;
        return s;
    }

  private:
    uint32_t n_;
    std::vector<int32_t> rowptr_, cols_;
};

// ================================================================ Cutcp

/** Parboil cutcp: cutoff-limited Coulombic potential on a 3D lattice. */
class Cutcp final : public Workload
{
  public:
    explicit Cutcp(double scale)
    {
        natoms_ = 67;   // Paper-exact atom count.
        double side_scale = std::cbrt(std::max(scale, 0.01));
        nx_ = scaled(static_cast<uint32_t>(96 * side_scale), 1.0, 16, 8);
        ny_ = nx_;
        nz_ = std::max(8u, nx_ / 4);
        spacing_ = 0.5f;
        cutoff2_ = 16.0f;
        Rng rng(71);
        atoms_.resize(natoms_ * 4);
        for (uint32_t a = 0; a < natoms_; ++a) {
            atoms_[a * 4 + 0] = rng.nextFloat() * nx_ * spacing_ + 0.13f;
            atoms_[a * 4 + 1] = rng.nextFloat() * ny_ * spacing_ + 0.17f;
            atoms_[a * 4 + 2] = rng.nextFloat() * nz_ * spacing_ + 0.19f;
            atoms_[a * 4 + 3] = rng.nextFloat() * 2.0f - 1.0f;
        }
    }

    std::string name() const override { return "cutcp"; }

    std::string
    source() const override
    {
        return R"(
kernel void cutcp(global const float* atoms, global float* lattice,
                  int natoms, int nx, int ny, float spacing,
                  float cutoff2) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int z = get_global_id(2);
    float px = (float)x * spacing;
    float py = (float)y * spacing;
    float pz = (float)z * spacing;
    float e = 0.0f;
    for (int a = 0; a < natoms; a += 1) {
        float dx = atoms[a * 4] - px;
        float dy = atoms[a * 4 + 1] - py;
        float dz = atoms[a * 4 + 2] - pz;
        float q = atoms[a * 4 + 3];
        float r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < cutoff2) {
            float s = 1.0f - r2 / cutoff2;
            e += q * rsqrt(r2) * s * s;
        }
    }
    lattice[(z * ny + y) * nx + x] = e;
}
)";
    }

    std::vector<float>
    reference() const
    {
        std::vector<float> lat(static_cast<size_t>(nx_) * ny_ * nz_);
        for (uint32_t z = 0; z < nz_; ++z)
        for (uint32_t y = 0; y < ny_; ++y)
        for (uint32_t x = 0; x < nx_; ++x) {
            float px = x * spacing_, py = y * spacing_, pz = z * spacing_;
            float e = 0;
            for (uint32_t a = 0; a < natoms_; ++a) {
                float dx = atoms_[a * 4] - px;
                float dy = atoms_[a * 4 + 1] - py;
                float dz = atoms_[a * 4 + 2] - pz;
                float q = atoms_[a * 4 + 3];
                float r2 = dx * dx + dy * dy + dz * dz;
                if (r2 < cutoff2_) {
                    float s = 1.0f - r2 / cutoff2_;
                    e += q * (1.0f / std::sqrt(r2)) * s * s;
                }
            }
            lat[(z * ny_ + y) * nx_ + x] = e;
        }
        return lat;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        size_t lat_bytes = static_cast<size_t>(nx_) * ny_ * nz_ * 4;
        BufHandle datoms = dev.alloc(atoms_.size() * 4);
        BufHandle dlat = dev.alloc(lat_bytes);
        dev.write(datoms, atoms_.data(), atoms_.size() * 4);
        std::string err;
        if (!dev.launch("cutcp", Dim3{nx_, ny_, nz_}, Dim3{8, 8, 1},
                        {WArg::buf(datoms), WArg::buf(dlat),
                         WArg::i32(static_cast<int32_t>(natoms_)),
                         WArg::i32(static_cast<int32_t>(nx_)),
                         WArg::i32(static_cast<int32_t>(ny_)),
                         WArg::f32(spacing_), WArg::f32(cutoff2_)},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(static_cast<size_t>(nx_) * ny_ * nz_);
        dev.read(dlat, got.data(), lat_bytes);
        std::vector<float> want = reference();
        for (size_t i = 0; i < got.size(); ++i) {
            if (!closeEnough(got[i], want[i], 1e-3f)) {
                rr.error = strfmt("lattice %zu: got %f want %f", i,
                                  got[i], want[i]);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> lat = reference();
        double s = 0;
        for (float v : lat)
            s += v;
        return s;
    }

  private:
    uint32_t natoms_, nx_, ny_, nz_;
    float spacing_, cutoff2_;
    std::vector<float> atoms_;
};

// ====================================================== NearestNeighbor

/** Rodinia nn: per-record distance computation; the host keeps the
 *  5 nearest (Table II: 5 records, 30 latitude, 90 longitude). */
class NearestNeighbor final : public Workload
{
  public:
    explicit NearestNeighbor(double scale)
    {
        n_ = scaled(42764, scale, 2048, 64);
        lat_ = 30.0f;
        lng_ = 90.0f;
        Rng rng(73);
        locations_.resize(static_cast<size_t>(n_) * 2);
        for (uint32_t i = 0; i < n_; ++i) {
            locations_[2 * i] = rng.nextFloat() * 180.0f - 90.0f;
            locations_[2 * i + 1] = rng.nextFloat() * 360.0f - 180.0f;
        }
    }

    std::string name() const override { return "nn"; }

    std::string
    source() const override
    {
        return R"(
kernel void nearest_neighbor(global const float* locations,
                             global float* distances, int n, float lat,
                             float lng) {
    int g = get_global_id(0);
    if (g < n) {
        float dx = locations[2 * g] - lat;
        float dy = locations[2 * g + 1] - lng;
        distances[g] = sqrt(dx * dx + dy * dy);
    }
}
)";
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        BufHandle dloc = dev.alloc(locations_.size() * 4);
        BufHandle ddist = dev.alloc(n_ * 4);
        dev.write(dloc, locations_.data(), locations_.size() * 4);
        std::string err;
        if (!dev.launch("nearest_neighbor", Dim3{n_, 1, 1},
                        Dim3{64, 1, 1},
                        {WArg::buf(dloc), WArg::buf(ddist),
                         WArg::i32(static_cast<int32_t>(n_)),
                         WArg::f32(lat_), WArg::f32(lng_)},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(n_);
        dev.read(ddist, got.data(), n_ * 4);
        for (uint32_t i = 0; i < n_; ++i) {
            float dx = locations_[2 * i] - lat_;
            float dy = locations_[2 * i + 1] - lng_;
            float want = std::sqrt(dx * dx + dy * dy);
            if (!closeEnough(got[i], want, 1e-4f)) {
                rr.error = strfmt("distance %u: got %f want %f", i,
                                  got[i], want);
                return rr;
            }
        }
        // Host selects the 5 nearest records, as in Rodinia.
        std::vector<uint32_t> idx(n_);
        for (uint32_t i = 0; i < n_; ++i)
            idx[i] = i;
        std::partial_sort(idx.begin(), idx.begin() + 5, idx.end(),
                          [&](uint32_t a, uint32_t b) {
                              return got[a] < got[b];
                          });
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        double best = 1e30;
        for (uint32_t i = 0; i < n_; ++i) {
            float dx = locations_[2 * i] - lat_;
            float dy = locations_[2 * i + 1] - lng_;
            best = std::min(best,
                            static_cast<double>(
                                std::sqrt(dx * dx + dy * dy)));
        }
        return best;
    }

  private:
    uint32_t n_;
    float lat_, lng_;
    std::vector<float> locations_;
};

// ================================================================ SGEMM

/** Parboil sgemm: C = alpha*A*B + beta*C (paper-exact 128x96 x 96x160). */
class Sgemm final : public Workload
{
  public:
    explicit Sgemm(double scale)
    {
        m_ = scaled(128, std::max(scale, 1.0), 32, 16);
        k_ = scaled(96, std::max(scale, 1.0), 32, 16);
        n_ = scaled(160, std::max(scale, 1.0), 32, 16);
        Rng rng(79);
        a_.resize(static_cast<size_t>(m_) * k_);
        b_.resize(static_cast<size_t>(k_) * n_);
        c_.resize(static_cast<size_t>(m_) * n_);
        for (float &v : a_)
            v = rng.nextFloat() - 0.5f;
        for (float &v : b_)
            v = rng.nextFloat() - 0.5f;
        for (float &v : c_)
            v = rng.nextFloat() - 0.5f;
    }

    std::string name() const override { return "sgemm"; }

    std::string
    source() const override
    {
        return R"(
kernel void sgemm(global const float* A, global const float* B,
                  global float* C, int m, int n, int k, float alpha,
                  float beta) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    float sum = 0.0f;
    for (int i = 0; i < k; i += 1) {
        sum += A[row * k + i] * B[i * n + col];
    }
    C[row * n + col] = alpha * sum + beta * C[row * n + col];
}
)";
    }

    std::vector<float>
    reference() const
    {
        std::vector<float> out = c_;
        for (uint32_t r = 0; r < m_; ++r) {
            for (uint32_t c = 0; c < n_; ++c) {
                float sum = 0;
                for (uint32_t i = 0; i < k_; ++i)
                    sum += a_[r * k_ + i] * b_[i * n_ + c];
                out[r * n_ + c] = 1.5f * sum + 0.5f * c_[r * n_ + c];
            }
        }
        return out;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        BufHandle da = dev.alloc(a_.size() * 4);
        BufHandle db = dev.alloc(b_.size() * 4);
        BufHandle dc = dev.alloc(c_.size() * 4);
        dev.write(da, a_.data(), a_.size() * 4);
        dev.write(db, b_.data(), b_.size() * 4);
        dev.write(dc, c_.data(), c_.size() * 4);
        std::string err;
        if (!dev.launch("sgemm", Dim3{n_, m_, 1}, Dim3{16, 16, 1},
                        {WArg::buf(da), WArg::buf(db), WArg::buf(dc),
                         WArg::i32(static_cast<int32_t>(m_)),
                         WArg::i32(static_cast<int32_t>(n_)),
                         WArg::i32(static_cast<int32_t>(k_)),
                         WArg::f32(1.5f), WArg::f32(0.5f)},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(c_.size());
        dev.read(dc, got.data(), got.size() * 4);
        std::vector<float> want = reference();
        for (size_t i = 0; i < got.size(); ++i) {
            if (!closeEnough(got[i], want[i], 1e-3f)) {
                rr.error = strfmt("C[%zu]: got %f want %f", i, got[i],
                                  want[i]);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> out = reference();
        double s = 0;
        for (float v : out)
            s += v;
        return s;
    }

  private:
    uint32_t m_, k_, n_;
    std::vector<float> a_, b_, c_;
};

// ================================================================= SPMV

/** Parboil spmv: CSR sparse matrix-vector product (paper-exact size:
 *  1138x1138, 2596 non-zeros at scale 1). */
class Spmv final : public Workload
{
  public:
    explicit Spmv(double scale)
    {
        n_ = scaled(1138, std::max(scale, 1.0), 256, 2);
        uint32_t nnz_target = scaled(2596, std::max(scale, 1.0), 512, 1);
        Rng rng(83);
        std::vector<std::vector<std::pair<uint32_t, float>>> rows(n_);
        for (uint32_t e = 0; e < nnz_target; ++e) {
            uint32_t r = rng.nextBelow(n_);
            uint32_t c = rng.nextBelow(n_);
            rows[r].push_back({c, rng.nextFloat() - 0.5f});
        }
        rowptr_.resize(n_ + 1);
        for (uint32_t r = 0; r < n_; ++r) {
            rowptr_[r + 1] = rowptr_[r] +
                             static_cast<int32_t>(rows[r].size());
            for (auto [c, v] : rows[r]) {
                cols_.push_back(static_cast<int32_t>(c));
                vals_.push_back(v);
            }
        }
        x_.resize(n_);
        for (float &v : x_)
            v = rng.nextFloat() - 0.5f;
    }

    std::string name() const override { return "spmv"; }

    std::string
    source() const override
    {
        return R"(
kernel void spmv_csr(global const int* rowptr, global const int* cols,
                     global const float* vals, global const float* x,
                     global float* y, int n) {
    int r = get_global_id(0);
    if (r < n) {
        float sum = 0.0f;
        for (int e = rowptr[r]; e < rowptr[r + 1]; e += 1) {
            sum += vals[e] * x[cols[e]];
        }
        y[r] = sum;
    }
}
)";
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        BufHandle drow = dev.alloc(rowptr_.size() * 4);
        BufHandle dcols = dev.alloc(std::max<size_t>(cols_.size(), 1) * 4);
        BufHandle dvals = dev.alloc(std::max<size_t>(vals_.size(), 1) * 4);
        BufHandle dx = dev.alloc(x_.size() * 4);
        BufHandle dy = dev.alloc(n_ * 4);
        dev.write(drow, rowptr_.data(), rowptr_.size() * 4);
        dev.write(dcols, cols_.data(), cols_.size() * 4);
        dev.write(dvals, vals_.data(), vals_.size() * 4);
        dev.write(dx, x_.data(), x_.size() * 4);
        std::string err;
        uint32_t threads = ((n_ + 63) / 64) * 64;
        if (!dev.launch("spmv_csr", Dim3{threads, 1, 1}, Dim3{64, 1, 1},
                        {WArg::buf(drow), WArg::buf(dcols),
                         WArg::buf(dvals), WArg::buf(dx), WArg::buf(dy),
                         WArg::i32(static_cast<int32_t>(n_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(n_);
        dev.read(dy, got.data(), n_ * 4);
        for (uint32_t r = 0; r < n_; ++r) {
            float want = 0;
            for (int32_t e = rowptr_[r]; e < rowptr_[r + 1]; ++e)
                want += vals_[e] * x_[cols_[e]];
            if (!closeEnough(got[r], want, 1e-3f)) {
                rr.error = strfmt("y[%u]: got %f want %f", r, got[r],
                                  want);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        double s = 0;
        for (uint32_t r = 0; r < n_; ++r) {
            float want = 0;
            for (int32_t e = rowptr_[r]; e < rowptr_[r + 1]; ++e)
                want += vals_[e] * x_[cols_[e]];
            s += want;
        }
        return s;
    }

  private:
    uint32_t n_;
    std::vector<int32_t> rowptr_, cols_;
    std::vector<float> vals_, x_;
};

// ============================================================== Stencil

/** Parboil stencil: 7-point 3D Jacobi, host-iterated with ping-pong
 *  buffers (100 iterations at scale 1). */
class Stencil final : public Workload
{
  public:
    explicit Stencil(double scale)
    {
        double s = std::cbrt(std::max(scale, 0.002));
        nx_ = scaled(static_cast<uint32_t>(128 * s), 1.0, 16, 8);
        ny_ = nx_;
        nz_ = std::max(8u, nx_ / 2);
        iters_ = std::max(4u, static_cast<uint32_t>(100 * scale));
        Rng rng(89);
        in_.resize(static_cast<size_t>(nx_) * ny_ * nz_);
        for (float &v : in_)
            v = rng.nextFloat();
    }

    std::string name() const override { return "stencil"; }

    std::string
    source() const override
    {
        return R"(
kernel void stencil7(global const float* in, global float* out, int nx,
                     int ny, int nz, float c0, float c1) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int z = get_global_id(2);
    int idx = (z * ny + y) * nx + x;
    if (x > 0 && x < nx - 1 && y > 0 && y < ny - 1 && z > 0 &&
        z < nz - 1) {
        float acc = in[idx - 1] + in[idx + 1] + in[idx - nx] +
                    in[idx + nx] + in[idx - nx * ny] + in[idx + nx * ny];
        out[idx] = c1 * acc + c0 * in[idx];
    } else {
        out[idx] = in[idx];
    }
}
)";
    }

    std::vector<float>
    reference() const
    {
        std::vector<float> a = in_, b(in_.size());
        for (uint32_t it = 0; it < iters_; ++it) {
            for (uint32_t z = 0; z < nz_; ++z)
            for (uint32_t y = 0; y < ny_; ++y)
            for (uint32_t x = 0; x < nx_; ++x) {
                size_t idx = (static_cast<size_t>(z) * ny_ + y) * nx_ + x;
                if (x > 0 && x < nx_ - 1 && y > 0 && y < ny_ - 1 &&
                    z > 0 && z < nz_ - 1) {
                    float acc = a[idx - 1] + a[idx + 1] + a[idx - nx_] +
                                a[idx + nx_] +
                                a[idx - static_cast<size_t>(nx_) * ny_] +
                                a[idx + static_cast<size_t>(nx_) * ny_];
                    b[idx] = kC1 * acc + kC0 * a[idx];
                } else {
                    b[idx] = a[idx];
                }
            }
            std::swap(a, b);
        }
        return a;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        size_t bytes = in_.size() * 4;
        BufHandle d0 = dev.alloc(bytes);
        BufHandle d1 = dev.alloc(bytes);
        dev.write(d0, in_.data(), bytes);
        BufHandle src = d0, dst = d1;
        for (uint32_t it = 0; it < iters_; ++it) {
            std::string err;
            if (!dev.launch("stencil7", Dim3{nx_, ny_, nz_},
                            Dim3{8, 8, 1},
                            {WArg::buf(src), WArg::buf(dst),
                             WArg::i32(static_cast<int32_t>(nx_)),
                             WArg::i32(static_cast<int32_t>(ny_)),
                             WArg::i32(static_cast<int32_t>(nz_)),
                             WArg::f32(kC0), WArg::f32(kC1)},
                            err)) {
                rr.error = err;
                return rr;
            }
            std::swap(src, dst);
        }
        std::vector<float> got(in_.size());
        dev.read(src, got.data(), bytes);
        std::vector<float> want = reference();
        for (size_t i = 0; i < got.size(); ++i) {
            if (!closeEnough(got[i], want[i], 2e-3f)) {
                rr.error = strfmt("cell %zu: got %f want %f", i, got[i],
                                  want[i]);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> out = reference();
        double s = 0;
        for (float v : out)
            s += v;
        return s;
    }

  private:
    static constexpr float kC0 = 0.5f;
    static constexpr float kC1 = 1.0f / 12.0f;
    uint32_t nx_, ny_, nz_, iters_;
    std::vector<float> in_;
};

// Factories used by the registry in workload.cc.
std::unique_ptr<Workload>
makeBackProp(double s)
{
    return std::make_unique<BackProp>(s);
}
std::unique_ptr<Workload>
makeBfs(double s)
{
    return std::make_unique<Bfs>(s);
}
std::unique_ptr<Workload>
makeCutcp(double s)
{
    return std::make_unique<Cutcp>(s);
}
std::unique_ptr<Workload>
makeNearestNeighbor(double s)
{
    return std::make_unique<NearestNeighbor>(s);
}
std::unique_ptr<Workload>
makeSgemm(double s)
{
    return std::make_unique<Sgemm>(s);
}
std::unique_ptr<Workload>
makeSpmv(double s)
{
    return std::make_unique<Spmv>(s);
}
std::unique_ptr<Workload>
makeStencil(double s)
{
    return std::make_unique<Stencil>(s);
}

} // namespace bifsim::workloads
