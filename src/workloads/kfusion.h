#ifndef BIFSIM_WORKLOADS_KFUSION_H
#define BIFSIM_WORKLOADS_KFUSION_H

/**
 * @file
 * A KFusion-like dense SLAM pipeline (the paper's SLAMBench use case,
 * §V-E1): bilateral filter -> depth pyramid -> vertex/normal maps ->
 * iterative ICP-style tracking with reductions -> TSDF volume
 * integration, all orchestrated by the (simulated) CPU across many
 * small kernel launches — thousands of kernels per sequence, which is
 * what breaks single-kernel GPU simulators.
 *
 * Three configurations mirror the paper's standard / fast3 / express
 * presets: progressively fewer tracking iterations and lower tracking
 * resolution trade accuracy for speed.
 */

#include <cstdint>
#include <string>

#include "instrument/stats.h"
#include "runtime/session.h"

namespace bifsim::workloads {

/** A SLAMBench-style configuration. */
struct KFusionConfig
{
    std::string name;
    uint32_t width = 96;        ///< Input depth-map width.
    uint32_t height = 96;
    uint32_t frames = 4;        ///< Frames in the sequence.
    uint32_t volume = 32;       ///< TSDF volume side (voxels).
    uint32_t iters[3] = {10, 5, 4};   ///< ICP iterations per level
                                      ///< (fine..coarse).
    bool bilateral = true;      ///< Bilateral-filter the input.
    uint32_t trackScale = 1;    ///< Extra downscale of tracking (1/2/4).

    static KFusionConfig standard(uint32_t w = 96, uint32_t h = 96,
                                  uint32_t frames = 4);
    static KFusionConfig fast3(uint32_t w = 96, uint32_t h = 96,
                               uint32_t frames = 4);
    static KFusionConfig express(uint32_t w = 96, uint32_t h = 96,
                                 uint32_t frames = 4);
};

/** Aggregate results for one configuration run. */
struct KFusionResult
{
    bool ok = false;
    std::string error;
    gpu::KernelStats kernel;      ///< Summed over all launches.
    gpu::SystemStats system;      ///< Pages / ctrl-regs / IRQs / jobs.
    uint64_t kernelLaunches = 0;
    double trackError = 0.0;      ///< Final mean ICP residual.
};

/** Runs the pipeline on @p session. */
KFusionResult runKFusion(rt::Session &session,
                         const KFusionConfig &config);

/** The pipeline's KCL source (all kernels). */
const char *kfusionSource();

} // namespace bifsim::workloads

#endif // BIFSIM_WORKLOADS_KFUSION_H
