/**
 * @file
 * Table II workloads from the AMD APP SDK 2.5 suite: BinarySearch,
 * BinomialOption, BitonicSort, DCT, DwtHaar1D, FloydWarshall,
 * MatrixTranspose, RecursiveGaussian, Reduction, ScanLargeArrays,
 * SobelFilter, URNG.
 *
 * Each workload generates deterministic inputs, runs its kernels on a
 * Device (simulator or baseline), and verifies against a host
 * reference.  Sizes follow Table II, scaled by the `scale` parameter.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "workloads/workload.h"

namespace bifsim::workloads {

namespace {

uint32_t
scaled(uint32_t paper, double scale, uint32_t floor_val,
       uint32_t multiple)
{
    auto v = static_cast<uint32_t>(paper * scale);
    v = std::max(v, floor_val);
    v = (v / multiple) * multiple;
    return std::max(v, multiple);
}

uint32_t
scaledSide(uint32_t paper, double scale, uint32_t floor_val,
           uint32_t multiple)
{
    return scaled(paper, std::sqrt(scale), floor_val, multiple);
}

} // namespace

// ========================================================= BinarySearch

/** AMD APP BinarySearch: iterative sub-division search with a short
 *  kernel per step and heavy host interaction (see Fig. 10's worst
 *  case). */
class BinarySearch final : public Workload
{
  public:
    explicit BinarySearch(double scale)
    {
        n_ = scaled(16777216, scale, 4096, 256);
        Rng rng(7);
        data_.resize(n_);
        uint32_t v = 0;
        for (uint32_t i = 0; i < n_; ++i) {
            v += rng.nextBelow(5) + 1;
            data_[i] = static_cast<int32_t>(v);
        }
        key_ = data_[static_cast<size_t>(n_ * 0.7351)];
    }

    std::string name() const override { return "binarysearch"; }

    std::string
    source() const override
    {
        return R"(
kernel void bsearch_seg(global const int* data, global int* result,
                        int lo, int seg, int key, int nseg) {
    int t = get_global_id(0);
    if (t < nseg) {
        int a = data[lo + t * seg];
        int b = data[lo + (t + 1) * seg - 1];
        if (key >= a && key <= b) {
            result[0] = t;
        }
    }
}
)";
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        constexpr uint32_t kThreads = 256;
        BufHandle ddata = dev.alloc(n_ * 4);
        BufHandle dres = dev.alloc(4);
        dev.write(ddata, data_.data(), n_ * 4);

        uint32_t lo = 0, len = n_;
        while (len > 1) {
            uint32_t seg = std::max(1u, len / kThreads);
            uint32_t nseg = len / seg;
            int32_t minus1 = -1;
            dev.write(dres, &minus1, 4);
            std::string err;
            if (!dev.launch("bsearch_seg", Dim3{kThreads, 1, 1},
                            Dim3{64, 1, 1},
                            {WArg::buf(ddata), WArg::buf(dres),
                             WArg::i32(lo), WArg::i32(seg),
                             WArg::i32(key_), WArg::i32(nseg)},
                            err)) {
                rr.error = err;
                return rr;
            }
            int32_t found = -1;
            dev.read(dres, &found, 4);
            if (found < 0) {
                rr.error = "key not found in any segment";
                return rr;
            }
            lo += static_cast<uint32_t>(found) * seg;
            len = seg;
        }
        rr.launches = dev.launches();

        auto it = std::lower_bound(data_.begin(), data_.end(), key_);
        uint32_t expect = static_cast<uint32_t>(it - data_.begin());
        // The kernel reports a segment whose bounds include the key;
        // with duplicates any matching index is acceptable.
        if (lo >= n_ || data_[lo] != key_) {
            (void)expect;
            rr.error = strfmt("found index %u does not hold the key", lo);
            return rr;
        }
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        auto it = std::lower_bound(data_.begin(), data_.end(), key_);
        return static_cast<double>(it - data_.begin());
    }

  private:
    uint32_t n_;
    int32_t key_;
    std::vector<int32_t> data_;
};

// ======================================================= BinomialOption

/** AMD APP BinomialOption: one workgroup per option, barrier-heavy
 *  lattice walk in local memory. */
class BinomialOption final : public Workload
{
  public:
    explicit BinomialOption(double scale)
    {
        samples_ = scaled(512, scale, 16, 4);
        steps_ = 63;   // workgroup = steps + 1 threads
        Rng rng(11);
        rand_.resize(samples_);
        for (uint32_t i = 0; i < samples_; ++i)
            rand_[i] = 0.1f + 0.8f * rng.nextFloat();
    }

    std::string name() const override { return "binomialoption"; }

    std::string
    source() const override
    {
        return R"(
kernel void binomial_option(global const float* randArr,
                            global float* output, int steps) {
    local float callA[128];
    local float callB[128];
    int tid = get_local_id(0);
    int bid = get_group_id(0);
    float inRand = randArr[bid];
    float s = (1.0f - inRand) * 5.0f + inRand * 30.0f;
    float x = (1.0f - inRand) * 1.0f + inRand * 100.0f;
    float optionYears = (1.0f - inRand) * 0.25f + inRand * 10.0f;
    float dt = optionYears * (1.0f / (float)steps);
    float vsdt = 0.3f * sqrt(dt);
    float rdt = 0.02f * dt;
    float r = exp(rdt);
    float rInv = 1.0f / r;
    float u = exp(vsdt);
    float d = 1.0f / u;
    float pu = (r - d) / (u - d);
    float pd = 1.0f - pu;
    float puByr = pu * rInv;
    float pdByr = pd * rInv;
    float profit = s * exp(vsdt * (float)(2 * tid - steps)) - x;
    callA[tid] = fmax(profit, 0.0f);
    barrier();
    for (int j = steps; j > 0; j -= 1) {
        if (tid < j) {
            callB[tid] = puByr * callA[tid + 1] + pdByr * callA[tid];
        }
        barrier();
        if (tid < j) {
            callA[tid] = callB[tid];
        }
        barrier();
    }
    if (tid == 0) {
        output[bid] = callA[0];
    }
}
)";
    }

    std::vector<float>
    reference() const
    {
        std::vector<float> out(samples_);
        std::vector<float> callA(steps_ + 1), callB(steps_ + 1);
        for (uint32_t b = 0; b < samples_; ++b) {
            float in_rand = rand_[b];
            float s = (1.0f - in_rand) * 5.0f + in_rand * 30.0f;
            float x = (1.0f - in_rand) * 1.0f + in_rand * 100.0f;
            float years = (1.0f - in_rand) * 0.25f + in_rand * 10.0f;
            float dt = years * (1.0f / static_cast<float>(steps_));
            float vsdt = 0.3f * std::sqrt(dt);
            float rdt = 0.02f * dt;
            float r = std::exp(rdt);
            float r_inv = 1.0f / r;
            float u = std::exp(vsdt);
            float d = 1.0f / u;
            float pu = (r - d) / (u - d);
            float pd = 1.0f - pu;
            float pu_byr = pu * r_inv;
            float pd_byr = pd * r_inv;
            for (uint32_t t = 0; t <= steps_; ++t) {
                float profit =
                    s * std::exp(vsdt * (2.0f * static_cast<float>(t) -
                                         static_cast<float>(steps_))) -
                    x;
                callA[t] = std::max(profit, 0.0f);
            }
            for (int j = static_cast<int>(steps_); j > 0; --j) {
                for (int t = 0; t < j; ++t)
                    callB[t] = pu_byr * callA[t + 1] + pd_byr * callA[t];
                for (int t = 0; t < j; ++t)
                    callA[t] = callB[t];
            }
            out[b] = callA[0];
        }
        return out;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        BufHandle drand = dev.alloc(samples_ * 4);
        BufHandle dout = dev.alloc(samples_ * 4);
        dev.write(drand, rand_.data(), samples_ * 4);
        std::string err;
        uint32_t wg = steps_ + 1;
        if (!dev.launch("binomial_option", Dim3{samples_ * wg, 1, 1},
                        Dim3{wg, 1, 1},
                        {WArg::buf(drand), WArg::buf(dout),
                         WArg::i32(static_cast<int32_t>(steps_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(samples_);
        dev.read(dout, got.data(), samples_ * 4);
        std::vector<float> want = reference();
        for (uint32_t i = 0; i < samples_; ++i) {
            if (!closeEnough(got[i], want[i], 5e-3f)) {
                rr.error = strfmt("sample %u: got %f want %f", i, got[i],
                                  want[i]);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> out = reference();
        double sum = 0;
        for (float v : out)
            sum += v;
        return sum;
    }

  private:
    uint32_t samples_;
    uint32_t steps_;
    std::vector<float> rand_;
};

// ========================================================== BitonicSort

/** AMD APP BitonicSort: log^2(n) short passes driven by the host. */
class BitonicSort final : public Workload
{
  public:
    explicit BitonicSort(double scale)
    {
        uint32_t n = scaled(2048, std::max(scale, 0.5), 512, 2);
        // Round up to a power of two.
        n_ = 1;
        while (n_ < n)
            n_ <<= 1;
        Rng rng(3);
        data_.resize(n_);
        for (uint32_t i = 0; i < n_; ++i)
            data_[i] = rng.next();
    }

    std::string name() const override { return "bitonicsort"; }

    std::string
    source() const override
    {
        return R"(
kernel void bitonic_sort(global uint* data, int stage, int passOfStage,
                         int direction) {
    int t = get_global_id(0);
    int pairDistance = 1 << (stage - passOfStage);
    int blockWidth = 2 * pairDistance;
    int leftId = (t % pairDistance) + (t / pairDistance) * blockWidth;
    int rightId = leftId + pairDistance;
    uint leftElement = data[leftId];
    uint rightElement = data[rightId];
    int sameDirectionBlockWidth = 1 << stage;
    int dirMod = (t / sameDirectionBlockWidth) % 2;
    int sortIncreasing = dirMod == 1 ? 1 - direction : direction;
    uint greater = leftElement > rightElement ? leftElement
                                              : rightElement;
    uint lesser = leftElement > rightElement ? rightElement
                                             : leftElement;
    if (sortIncreasing != 0) {
        data[leftId] = lesser;
        data[rightId] = greater;
    } else {
        data[leftId] = greater;
        data[rightId] = lesser;
    }
}
)";
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        BufHandle dbuf = dev.alloc(n_ * 4);
        dev.write(dbuf, data_.data(), n_ * 4);

        uint32_t stages = 0;
        for (uint32_t t = n_; t > 1; t >>= 1)
            stages++;
        uint32_t threads = n_ / 2;
        for (uint32_t stage = 0; stage < stages; ++stage) {
            for (uint32_t pass = 0; pass <= stage; ++pass) {
                std::string err;
                if (!dev.launch(
                        "bitonic_sort", Dim3{threads, 1, 1},
                        Dim3{std::min(threads, 64u), 1, 1},
                        {WArg::buf(dbuf),
                         WArg::i32(static_cast<int32_t>(stage)),
                         WArg::i32(static_cast<int32_t>(pass)),
                         WArg::i32(1)},
                        err)) {
                    rr.error = err;
                    return rr;
                }
            }
        }
        std::vector<uint32_t> got(n_);
        dev.read(dbuf, got.data(), n_ * 4);
        std::vector<uint32_t> want = data_;
        std::sort(want.begin(), want.end());
        if (got != want) {
            rr.error = "output not sorted";
            return rr;
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<uint32_t> v = data_;
        std::sort(v.begin(), v.end());
        return static_cast<double>(v[v.size() / 2]);
    }

  private:
    uint32_t n_;
    std::vector<uint32_t> data_;
};

// ================================================================== DCT

/** AMD APP DCT: 8x8 block discrete cosine transform. */
class Dct final : public Workload
{
  public:
    explicit Dct(double scale)
    {
        w_ = scaledSide(4096, scale, 64, 8);
        h_ = scaledSide(2048, scale, 64, 8);
        Rng rng(17);
        in_.resize(static_cast<size_t>(w_) * h_);
        for (float &v : in_)
            v = rng.nextFloat() * 255.0f;
        for (int v = 0; v < 8; ++v) {
            for (int i = 0; i < 8; ++i) {
                float a = v == 0 ? std::sqrt(1.0f / 8.0f)
                                 : std::sqrt(2.0f / 8.0f);
                dct8_[v * 8 + i] =
                    a * std::cos((2 * i + 1) * v * 3.14159265f / 16.0f);
            }
        }
    }

    std::string name() const override { return "dct"; }

    std::string
    source() const override
    {
        return R"(
kernel void dct8x8(global const float* input, global float* output,
                   global const float* dct8, int width) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int bx = (x / 8) * 8;
    int by = (y / 8) * 8;
    int u = x % 8;
    int v = y % 8;
    float acc = 0.0f;
    for (int i = 0; i < 8; i += 1) {
        float t = 0.0f;
        for (int j = 0; j < 8; j += 1) {
            t += input[(by + i) * width + bx + j] * dct8[u * 8 + j];
        }
        acc += dct8[v * 8 + i] * t;
    }
    output[y * width + x] = acc;
}
)";
    }

    std::vector<float>
    reference() const
    {
        std::vector<float> out(in_.size());
        for (uint32_t y = 0; y < h_; ++y) {
            for (uint32_t x = 0; x < w_; ++x) {
                uint32_t bx = (x / 8) * 8, by = (y / 8) * 8;
                uint32_t u = x % 8, v = y % 8;
                float acc = 0;
                for (int i = 0; i < 8; ++i) {
                    float t = 0;
                    for (int j = 0; j < 8; ++j) {
                        t += in_[(by + i) * w_ + bx + j] *
                             dct8_[u * 8 + j];
                    }
                    acc += dct8_[v * 8 + i] * t;
                }
                out[y * w_ + x] = acc;
            }
        }
        return out;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        size_t bytes = in_.size() * 4;
        BufHandle din = dev.alloc(bytes);
        BufHandle dout = dev.alloc(bytes);
        BufHandle dtab = dev.alloc(sizeof(dct8_));
        dev.write(din, in_.data(), bytes);
        dev.write(dtab, dct8_, sizeof(dct8_));
        std::string err;
        if (!dev.launch("dct8x8", Dim3{w_, h_, 1}, Dim3{8, 8, 1},
                        {WArg::buf(din), WArg::buf(dout), WArg::buf(dtab),
                         WArg::i32(static_cast<int32_t>(w_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(in_.size());
        dev.read(dout, got.data(), bytes);
        std::vector<float> want = reference();
        for (size_t i = 0; i < got.size(); ++i) {
            if (!closeEnough(got[i], want[i], 1e-3f)) {
                rr.error = strfmt("pixel %zu: got %f want %f", i, got[i],
                                  want[i]);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> out = reference();
        double s = 0;
        for (float v : out)
            s += v;
        return s;
    }

  private:
    uint32_t w_, h_;
    std::vector<float> in_;
    float dct8_[64];
};

// ============================================================ DwtHaar1D

/** AMD APP DwtHaar1D: per-group Haar wavelet with barriers. */
class DwtHaar1D final : public Workload
{
  public:
    explicit DwtHaar1D(double scale)
    {
        groupSize_ = 64;                      // threads per group
        uint32_t signal = scaled(8388608, scale, 8192, groupSize_ * 2);
        groups_ = signal / (groupSize_ * 2);
        n_ = groups_ * groupSize_ * 2;
        Rng rng(23);
        in_.resize(n_);
        for (float &v : in_)
            v = rng.nextFloat() * 2.0f - 1.0f;
    }

    std::string name() const override { return "dwthaar1d"; }

    std::string
    source() const override
    {
        return R"(
kernel void dwt_haar1d(global const float* in, global float* out,
                       int groupSize) {
    local float t0[128];
    local float t1[128];
    int lid = get_local_id(0);
    int gid = get_group_id(0);
    int base = gid * groupSize * 2;
    float invsq = 0.70710678f;
    t0[2 * lid] = in[base + 2 * lid];
    t0[2 * lid + 1] = in[base + 2 * lid + 1];
    barrier();
    int len = groupSize;
    while (len > 0) {
        if (lid < len) {
            float a = t0[2 * lid];
            float b = t0[2 * lid + 1];
            out[base + len + lid] = (a - b) * invsq;
            t1[lid] = (a + b) * invsq;
        }
        barrier();
        if (lid < len) {
            t0[lid] = t1[lid];
        }
        barrier();
        len = len / 2;
    }
    if (lid == 0) {
        out[base] = t0[0];
    }
}
)";
    }

    std::vector<float>
    reference() const
    {
        std::vector<float> out(n_);
        const float invsq = 0.70710678f;
        std::vector<float> t0(groupSize_ * 2), t1(groupSize_);
        for (uint32_t g = 0; g < groups_; ++g) {
            uint32_t base = g * groupSize_ * 2;
            for (uint32_t i = 0; i < groupSize_ * 2; ++i)
                t0[i] = in_[base + i];
            uint32_t len = groupSize_;
            while (len > 0) {
                for (uint32_t i = 0; i < len; ++i) {
                    float a = t0[2 * i], b = t0[2 * i + 1];
                    out[base + len + i] = (a - b) * invsq;
                    t1[i] = (a + b) * invsq;
                }
                for (uint32_t i = 0; i < len; ++i)
                    t0[i] = t1[i];
                len /= 2;
            }
            out[base] = t0[0];
        }
        return out;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        BufHandle din = dev.alloc(n_ * 4);
        BufHandle dout = dev.alloc(n_ * 4);
        dev.write(din, in_.data(), n_ * 4);
        std::string err;
        if (!dev.launch("dwt_haar1d", Dim3{groups_ * groupSize_, 1, 1},
                        Dim3{groupSize_, 1, 1},
                        {WArg::buf(din), WArg::buf(dout),
                         WArg::i32(static_cast<int32_t>(groupSize_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(n_);
        dev.read(dout, got.data(), n_ * 4);
        std::vector<float> want = reference();
        for (size_t i = 0; i < got.size(); ++i) {
            if (!closeEnough(got[i], want[i], 1e-3f)) {
                rr.error = strfmt("coef %zu: got %f want %f", i, got[i],
                                  want[i]);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> out = reference();
        double s = 0;
        for (float v : out)
            s += v;
        return s;
    }

  private:
    uint32_t groupSize_, groups_, n_;
    std::vector<float> in_;
};

// ======================================================== FloydWarshall

/** AMD APP FloydWarshall: n kernel launches, one per pivot. */
class FloydWarshall final : public Workload
{
  public:
    explicit FloydWarshall(double scale)
    {
        n_ = scaledSide(256, std::max(scale, 0.25), 64, 16);
        Rng rng(29);
        dist_.assign(static_cast<size_t>(n_) * n_, 0);
        for (uint32_t i = 0; i < n_; ++i) {
            for (uint32_t j = 0; j < n_; ++j) {
                if (i == j)
                    dist_[i * n_ + j] = 0;
                else if (rng.nextBelow(100) < 12)
                    dist_[i * n_ + j] =
                        static_cast<int32_t>(rng.nextBelow(100) + 1);
                else
                    dist_[i * n_ + j] = kInf;
            }
        }
    }

    std::string name() const override { return "floydwarshall"; }

    std::string
    source() const override
    {
        return R"(
kernel void floyd_warshall(global int* dist, int n, int k) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int ik = dist[y * n + k];
    int kj = dist[k * n + x];
    int cur = dist[y * n + x];
    int cand = ik + kj;
    if (cand < cur) {
        dist[y * n + x] = cand;
    }
}
)";
    }

    std::vector<int32_t>
    reference() const
    {
        std::vector<int32_t> d = dist_;
        for (uint32_t k = 0; k < n_; ++k) {
            for (uint32_t i = 0; i < n_; ++i) {
                for (uint32_t j = 0; j < n_; ++j) {
                    int32_t c = d[i * n_ + k] + d[k * n_ + j];
                    if (c < d[i * n_ + j])
                        d[i * n_ + j] = c;
                }
            }
        }
        return d;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        size_t bytes = dist_.size() * 4;
        BufHandle dmat = dev.alloc(bytes);
        dev.write(dmat, dist_.data(), bytes);
        for (uint32_t k = 0; k < n_; ++k) {
            std::string err;
            if (!dev.launch("floyd_warshall", Dim3{n_, n_, 1},
                            Dim3{16, 16, 1},
                            {WArg::buf(dmat),
                             WArg::i32(static_cast<int32_t>(n_)),
                             WArg::i32(static_cast<int32_t>(k))},
                            err)) {
                rr.error = err;
                return rr;
            }
        }
        std::vector<int32_t> got(dist_.size());
        dev.read(dmat, got.data(), bytes);
        if (got != reference()) {
            rr.error = "distance matrix mismatch";
            return rr;
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<int32_t> d = reference();
        double s = 0;
        for (int32_t v : d)
            s += v == kInf ? 0 : v;
        return s;
    }

  private:
    static constexpr int32_t kInf = 1 << 28;
    uint32_t n_;
    std::vector<int32_t> dist_;
};

// ====================================================== MatrixTranspose

/** AMD APP MatrixTranspose: 16x16 tiles staged through local memory. */
class MatrixTranspose final : public Workload
{
  public:
    explicit MatrixTranspose(double scale)
    {
        w_ = scaledSide(3008, scale, 64, 16);
        h_ = scaledSide(3008, scale, 64, 16);
        Rng rng(31);
        in_.resize(static_cast<size_t>(w_) * h_);
        for (float &v : in_)
            v = rng.nextFloat();
    }

    std::string name() const override { return "matrixtranspose"; }

    std::string
    source() const override
    {
        return R"(
kernel void matrix_transpose(global const float* in, global float* out,
                             int width, int height) {
    local float tile[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int x = get_global_id(0);
    int y = get_global_id(1);
    tile[ly * 16 + lx] = in[y * width + x];
    barrier();
    int gx = get_group_id(0) * 16;
    int gy = get_group_id(1) * 16;
    out[(gx + ly) * height + gy + lx] = tile[lx * 16 + ly];
}
)";
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        size_t bytes = in_.size() * 4;
        BufHandle din = dev.alloc(bytes);
        BufHandle dout = dev.alloc(bytes);
        dev.write(din, in_.data(), bytes);
        std::string err;
        if (!dev.launch("matrix_transpose", Dim3{w_, h_, 1},
                        Dim3{16, 16, 1},
                        {WArg::buf(din), WArg::buf(dout),
                         WArg::i32(static_cast<int32_t>(w_)),
                         WArg::i32(static_cast<int32_t>(h_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(in_.size());
        dev.read(dout, got.data(), bytes);
        for (uint32_t y = 0; y < h_; ++y) {
            for (uint32_t x = 0; x < w_; ++x) {
                if (got[x * h_ + y] != in_[y * w_ + x]) {
                    rr.error = strfmt("transpose mismatch at (%u,%u)", x,
                                      y);
                    return rr;
                }
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> out(in_.size());
        for (uint32_t y = 0; y < h_; ++y)
            for (uint32_t x = 0; x < w_; ++x)
                out[x * h_ + y] = in_[y * w_ + x];
        return out[out.size() / 2];
    }

  private:
    uint32_t w_, h_;
    std::vector<float> in_;
};

// ===================================================== RecursiveGaussian

/** AMD APP RecursiveGaussian: row-parallel IIR filter + transpose,
 *  applied in both dimensions. */
class RecursiveGaussian final : public Workload
{
  public:
    explicit RecursiveGaussian(double scale)
    {
        side_ = scaledSide(1536, scale, 64, 16);
        Rng rng(37);
        in_.resize(static_cast<size_t>(side_) * side_);
        for (float &v : in_)
            v = rng.nextFloat() * 255.0f;
    }

    std::string name() const override { return "recursivegaussian"; }

    std::string
    source() const override
    {
        return R"(
kernel void rgauss_rows(global const float* in, global float* out,
                        int width, int height, float a) {
    int y = get_global_id(0);
    if (y >= height) {
        return;
    }
    float yp = in[y * width];
    out[y * width] = yp;
    for (int x = 1; x < width; x += 1) {
        float xc = in[y * width + x];
        yp = yp + a * (xc - yp);
        out[y * width + x] = yp;
    }
    yp = out[y * width + width - 1];
    for (int x = width - 2; x >= 0; x -= 1) {
        float xc = out[y * width + x];
        yp = yp + a * (xc - yp);
        out[y * width + x] = yp;
    }
}

kernel void rgauss_transpose(global const float* in, global float* out,
                             int width, int height) {
    local float tile[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int x = get_global_id(0);
    int y = get_global_id(1);
    tile[ly * 16 + lx] = in[y * width + x];
    barrier();
    int gx = get_group_id(0) * 16;
    int gy = get_group_id(1) * 16;
    out[(gx + ly) * height + gy + lx] = tile[lx * 16 + ly];
}
)";
    }

    static void
    hostRows(const std::vector<float> &in, std::vector<float> &out,
             uint32_t w, uint32_t h, float a)
    {
        for (uint32_t y = 0; y < h; ++y) {
            float yp = in[y * w];
            out[y * w] = yp;
            for (uint32_t x = 1; x < w; ++x) {
                float xc = in[y * w + x];
                yp = yp + a * (xc - yp);
                out[y * w + x] = yp;
            }
            yp = out[y * w + w - 1];
            for (int x = static_cast<int>(w) - 2; x >= 0; --x) {
                float xc = out[y * w + x];
                yp = yp + a * (xc - yp);
                out[y * w + x] = yp;
            }
        }
    }

    std::vector<float>
    reference() const
    {
        uint32_t s = side_;
        std::vector<float> t1(in_.size()), t2(in_.size());
        hostRows(in_, t1, s, s, kAlpha);
        // transpose
        for (uint32_t y = 0; y < s; ++y)
            for (uint32_t x = 0; x < s; ++x)
                t2[x * s + y] = t1[y * s + x];
        hostRows(t2, t1, s, s, kAlpha);
        std::vector<float> out(in_.size());
        for (uint32_t y = 0; y < s; ++y)
            for (uint32_t x = 0; x < s; ++x)
                out[x * s + y] = t1[y * s + x];
        return out;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        size_t bytes = in_.size() * 4;
        BufHandle din = dev.alloc(bytes);
        BufHandle dt1 = dev.alloc(bytes);
        BufHandle dt2 = dev.alloc(bytes);
        dev.write(din, in_.data(), bytes);
        std::string err;
        uint32_t s = side_;
        auto rows = [&](BufHandle src, BufHandle dst) {
            return dev.launch("rgauss_rows", Dim3{s, 1, 1},
                              Dim3{16, 1, 1},
                              {WArg::buf(src), WArg::buf(dst),
                               WArg::i32(static_cast<int32_t>(s)),
                               WArg::i32(static_cast<int32_t>(s)),
                               WArg::f32(kAlpha)},
                              err);
        };
        auto transpose = [&](BufHandle src, BufHandle dst) {
            return dev.launch("rgauss_transpose", Dim3{s, s, 1},
                              Dim3{16, 16, 1},
                              {WArg::buf(src), WArg::buf(dst),
                               WArg::i32(static_cast<int32_t>(s)),
                               WArg::i32(static_cast<int32_t>(s))},
                              err);
        };
        if (!rows(din, dt1) || !transpose(dt1, dt2) || !rows(dt2, dt1) ||
            !transpose(dt1, dt2)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(in_.size());
        dev.read(dt2, got.data(), bytes);
        std::vector<float> want = reference();
        for (size_t i = 0; i < got.size(); ++i) {
            if (!closeEnough(got[i], want[i], 1e-3f)) {
                rr.error = strfmt("pixel %zu: got %f want %f", i, got[i],
                                  want[i]);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> out = reference();
        double sum = 0;
        for (float v : out)
            sum += v;
        return sum;
    }

  private:
    static constexpr float kAlpha = 0.6f;
    uint32_t side_;
    std::vector<float> in_;
};

// ============================================================ Reduction

/** AMD APP Reduction: local-memory tree reduction, multi-pass. */
class Reduction final : public Workload
{
  public:
    explicit Reduction(double scale)
    {
        n_ = scaled(9999360, scale, 16384, 256);
        Rng rng(41);
        in_.resize(n_);
        for (uint32_t i = 0; i < n_; ++i)
            in_[i] = static_cast<int32_t>(rng.nextBelow(100));
    }

    std::string name() const override { return "reduction"; }

    std::string
    source() const override
    {
        return R"(
kernel void reduce(global const int* in, global int* out, int n) {
    local int sdata[256];
    int lid = get_local_id(0);
    int g = get_global_id(0);
    sdata[lid] = g < n ? in[g] : 0;
    barrier();
    for (int s = get_local_size(0) / 2; s > 0; s = s / 2) {
        if (lid < s) {
            sdata[lid] += sdata[lid + s];
        }
        barrier();
    }
    if (lid == 0) {
        out[get_group_id(0)] = sdata[0];
    }
}
)";
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        constexpr uint32_t kWg = 256;
        BufHandle din = dev.alloc(n_ * 4);
        dev.write(din, in_.data(), n_ * 4);
        uint32_t n = n_;
        BufHandle cur = din;
        while (n > 1) {
            uint32_t groups = (n + kWg - 1) / kWg;
            BufHandle next = dev.alloc(groups * 4);
            std::string err;
            if (!dev.launch("reduce", Dim3{groups * kWg, 1, 1},
                            Dim3{kWg, 1, 1},
                            {WArg::buf(cur), WArg::buf(next),
                             WArg::i32(static_cast<int32_t>(n))},
                            err)) {
                rr.error = err;
                return rr;
            }
            cur = next;
            n = groups;
        }
        int32_t got = 0;
        dev.read(cur, &got, 4);
        int64_t want = 0;
        for (int32_t v : in_)
            want += v;
        if (got != static_cast<int32_t>(want)) {
            rr.error = strfmt("sum mismatch: got %d want %lld", got,
                              static_cast<long long>(want));
            return rr;
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        int64_t want = 0;
        for (int32_t v : in_)
            want += v;
        return static_cast<double>(want);
    }

  private:
    uint32_t n_;
    std::vector<int32_t> in_;
};

// ====================================================== ScanLargeArrays

/** AMD APP ScanLargeArrays: block scan + host-scanned block sums +
 *  offset propagation. */
class ScanLargeArrays final : public Workload
{
  public:
    explicit ScanLargeArrays(double scale)
    {
        n_ = scaled(1048576, scale, 8192, 256);
        Rng rng(43);
        in_.resize(n_);
        for (float &v : in_)
            v = rng.nextFloat();
    }

    std::string name() const override { return "scanlargearrays"; }

    std::string
    source() const override
    {
        return R"(
kernel void scan_block(global const float* in, global float* out,
                       global float* sums, int n) {
    local float a[256];
    local float b[256];
    int lid = get_local_id(0);
    int g = get_global_id(0);
    int B = get_local_size(0);
    a[lid] = g < n ? in[g] : 0.0f;
    barrier();
    for (int off = 1; off < B; off = off * 2) {
        if (lid >= off) {
            b[lid] = a[lid] + a[lid - off];
        } else {
            b[lid] = a[lid];
        }
        barrier();
        a[lid] = b[lid];
        barrier();
    }
    out[g] = lid > 0 ? a[lid - 1] : 0.0f;
    if (lid == B - 1) {
        sums[get_group_id(0)] = a[lid];
    }
}

kernel void scan_add_offsets(global float* out,
                             global const float* offsets, int n) {
    int g = get_global_id(0);
    if (g < n) {
        out[g] += offsets[get_group_id(0)];
    }
}
)";
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        constexpr uint32_t kWg = 256;
        uint32_t groups = (n_ + kWg - 1) / kWg;
        BufHandle din = dev.alloc(n_ * 4);
        BufHandle dout = dev.alloc(n_ * 4);
        BufHandle dsums = dev.alloc(groups * 4);
        dev.write(din, in_.data(), n_ * 4);
        std::string err;
        if (!dev.launch("scan_block", Dim3{groups * kWg, 1, 1},
                        Dim3{kWg, 1, 1},
                        {WArg::buf(din), WArg::buf(dout),
                         WArg::buf(dsums),
                         WArg::i32(static_cast<int32_t>(n_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        // Host-side exclusive scan of the block sums (the reference
        // implementation launches a recursive kernel; a host scan keeps
        // the same device-side work per element).
        std::vector<float> sums(groups);
        dev.read(dsums, sums.data(), groups * 4);
        float acc = 0;
        for (uint32_t i = 0; i < groups; ++i) {
            float next = acc + sums[i];
            sums[i] = acc;
            acc = next;
        }
        dev.write(dsums, sums.data(), groups * 4);
        if (!dev.launch("scan_add_offsets", Dim3{groups * kWg, 1, 1},
                        Dim3{kWg, 1, 1},
                        {WArg::buf(dout), WArg::buf(dsums),
                         WArg::i32(static_cast<int32_t>(n_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(n_);
        dev.read(dout, got.data(), n_ * 4);
        double run = 0;
        for (uint32_t i = 0; i < n_; ++i) {
            if (!closeEnough(got[i], static_cast<float>(run), 2e-3f)) {
                rr.error = strfmt("scan[%u]: got %f want %f", i, got[i],
                                  run);
                return rr;
            }
            run += in_[i];
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        double run = 0;
        for (float v : in_)
            run += v;
        return run;
    }

  private:
    uint32_t n_;
    std::vector<float> in_;
};

// ========================================================== SobelFilter

/** AMD APP SobelFilter: 3x3 gradient filter, one thread per pixel. */
class SobelFilter final : public Workload
{
  public:
    explicit SobelFilter(double scale, uint32_t side_override = 0)
    {
        side_ = side_override ? side_override
                              : scaledSide(1536, scale, 64, 16);
        Rng rng(47);
        in_.resize(static_cast<size_t>(side_) * side_);
        for (float &v : in_)
            v = rng.nextFloat() * 255.0f;
    }

    std::string name() const override { return "sobelfilter"; }

    std::string
    source() const override
    {
        return R"(
kernel void sobel(global const float* in, global float* out, int width,
                  int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x == 0 || y == 0 || x == width - 1 || y == height - 1) {
        out[y * width + x] = 0.0f;
        return;
    }
    float i00 = in[(y - 1) * width + x - 1];
    float i01 = in[(y - 1) * width + x];
    float i02 = in[(y - 1) * width + x + 1];
    float i10 = in[y * width + x - 1];
    float i12 = in[y * width + x + 1];
    float i20 = in[(y + 1) * width + x - 1];
    float i21 = in[(y + 1) * width + x];
    float i22 = in[(y + 1) * width + x + 1];
    float gx = i00 + 2.0f * i01 + i02 - i20 - 2.0f * i21 - i22;
    float gy = i00 + 2.0f * i10 + i20 - i02 - 2.0f * i12 - i22;
    out[y * width + x] = sqrt(gx * gx + gy * gy) * 0.5f;
}
)";
    }

    std::vector<float>
    reference() const
    {
        uint32_t w = side_, h = side_;
        std::vector<float> out(in_.size(), 0.0f);
        for (uint32_t y = 1; y + 1 < h; ++y) {
            for (uint32_t x = 1; x + 1 < w; ++x) {
                float i00 = in_[(y - 1) * w + x - 1];
                float i01 = in_[(y - 1) * w + x];
                float i02 = in_[(y - 1) * w + x + 1];
                float i10 = in_[y * w + x - 1];
                float i12 = in_[y * w + x + 1];
                float i20 = in_[(y + 1) * w + x - 1];
                float i21 = in_[(y + 1) * w + x];
                float i22 = in_[(y + 1) * w + x + 1];
                float gx =
                    i00 + 2.0f * i01 + i02 - i20 - 2.0f * i21 - i22;
                float gy =
                    i00 + 2.0f * i10 + i20 - i02 - 2.0f * i12 - i22;
                out[y * w + x] = std::sqrt(gx * gx + gy * gy) * 0.5f;
            }
        }
        return out;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        size_t bytes = in_.size() * 4;
        BufHandle din = dev.alloc(bytes);
        BufHandle dout = dev.alloc(bytes);
        dev.write(din, in_.data(), bytes);
        std::string err;
        if (!dev.launch("sobel", Dim3{side_, side_, 1}, Dim3{16, 16, 1},
                        {WArg::buf(din), WArg::buf(dout),
                         WArg::i32(static_cast<int32_t>(side_)),
                         WArg::i32(static_cast<int32_t>(side_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(in_.size());
        dev.read(dout, got.data(), bytes);
        std::vector<float> want = reference();
        for (size_t i = 0; i < got.size(); ++i) {
            if (!closeEnough(got[i], want[i], 1e-3f)) {
                rr.error = strfmt("pixel %zu: got %f want %f", i, got[i],
                                  want[i]);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> out = reference();
        double s = 0;
        for (float v : out)
            s += v;
        return s;
    }

  private:
    uint32_t side_;
    std::vector<float> in_;
};

// ================================================================= URNG

/** AMD APP URNG: uniform random noise applied per pixel. */
class Urng final : public Workload
{
  public:
    explicit Urng(double scale)
    {
        side_ = scaledSide(1536, scale, 64, 16);
        Rng rng(53);
        in_.resize(static_cast<size_t>(side_) * side_);
        for (float &v : in_)
            v = rng.nextFloat() * 255.0f;
    }

    std::string name() const override { return "urng"; }

    std::string
    source() const override
    {
        return R"(
kernel void urng(global const float* in, global float* out, int width) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int idx = y * width + x;
    uint seed = (uint)idx * 1103515245u + 12345u;
    seed = seed * 1103515245u + 12345u;
    uint noise = (seed >> 16) & 255u;
    seed = seed * 1103515245u + 12345u;
    noise = (noise + ((seed >> 16) & 255u)) >> 1;
    float delta = ((float)noise - 128.0f) * 0.2f;
    out[idx] = in[idx] + delta;
}
)";
    }

    std::vector<float>
    reference() const
    {
        std::vector<float> out(in_.size());
        for (uint32_t i = 0; i < in_.size(); ++i) {
            uint32_t seed = i * 1103515245u + 12345u;
            seed = seed * 1103515245u + 12345u;
            uint32_t noise = (seed >> 16) & 255u;
            seed = seed * 1103515245u + 12345u;
            noise = (noise + ((seed >> 16) & 255u)) >> 1;
            float delta = (static_cast<float>(noise) - 128.0f) * 0.2f;
            out[i] = in_[i] + delta;
        }
        return out;
    }

    RunResult
    run(Device &dev) override
    {
        RunResult rr;
        size_t bytes = in_.size() * 4;
        BufHandle din = dev.alloc(bytes);
        BufHandle dout = dev.alloc(bytes);
        dev.write(din, in_.data(), bytes);
        std::string err;
        if (!dev.launch("urng", Dim3{side_, side_, 1}, Dim3{16, 16, 1},
                        {WArg::buf(din), WArg::buf(dout),
                         WArg::i32(static_cast<int32_t>(side_))},
                        err)) {
            rr.error = err;
            return rr;
        }
        std::vector<float> got(in_.size());
        dev.read(dout, got.data(), bytes);
        std::vector<float> want = reference();
        for (size_t i = 0; i < got.size(); ++i) {
            if (got[i] != want[i]) {
                rr.error = strfmt("pixel %zu: got %f want %f", i, got[i],
                                  want[i]);
                return rr;
            }
        }
        rr.launches = dev.launches();
        rr.ok = true;
        return rr;
    }

    double
    runNative() override
    {
        std::vector<float> out = reference();
        double s = 0;
        for (float v : out)
            s += v;
        return s;
    }

  private:
    uint32_t side_;
    std::vector<float> in_;
};

// Factories used by the registry in workload.cc.
std::unique_ptr<Workload>
makeBinarySearch(double s)
{
    return std::make_unique<BinarySearch>(s);
}
std::unique_ptr<Workload>
makeBinomialOption(double s)
{
    return std::make_unique<BinomialOption>(s);
}
std::unique_ptr<Workload>
makeBitonicSort(double s)
{
    return std::make_unique<BitonicSort>(s);
}
std::unique_ptr<Workload>
makeDct(double s)
{
    return std::make_unique<Dct>(s);
}
std::unique_ptr<Workload>
makeDwtHaar1D(double s)
{
    return std::make_unique<DwtHaar1D>(s);
}
std::unique_ptr<Workload>
makeFloydWarshall(double s)
{
    return std::make_unique<FloydWarshall>(s);
}
std::unique_ptr<Workload>
makeMatrixTranspose(double s)
{
    return std::make_unique<MatrixTranspose>(s);
}
std::unique_ptr<Workload>
makeRecursiveGaussian(double s)
{
    return std::make_unique<RecursiveGaussian>(s);
}
std::unique_ptr<Workload>
makeReduction(double s)
{
    return std::make_unique<Reduction>(s);
}
std::unique_ptr<Workload>
makeScanLargeArrays(double s)
{
    return std::make_unique<ScanLargeArrays>(s);
}
std::unique_ptr<Workload>
makeSobelFilter(double s)
{
    return std::make_unique<SobelFilter>(s);
}
std::unique_ptr<Workload>
makeSobelFilterSized(uint32_t side)
{
    return std::make_unique<SobelFilter>(1.0, side);
}
std::unique_ptr<Workload>
makeUrng(double s)
{
    return std::make_unique<Urng>(s);
}

} // namespace bifsim::workloads
