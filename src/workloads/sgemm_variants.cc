#include "workloads/sgemm_variants.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace bifsim::workloads {

std::vector<std::string>
sgemmVariantNames()
{
    return {"1:Naive",          "2:LocalMemTiling", "3:MoreWork/Thread",
            "4:WiderDataTypes", "5:TransInput",     "6:2DRegBlocking"};
}

const char *
sgemmVariantsSource()
{
    return R"(
// 1: one thread per output element; every operand read from DRAM.
kernel void sgemm1(global const float* A, global const float* B,
                   global float* C, int n) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    for (int k = 0; k < n; k += 1) {
        acc += A[row * n + k] * B[k * n + col];
    }
    C[row * n + col] = acc;
}

// 2: classic 16x16 local-memory tiling.
kernel void sgemm2(global const float* A, global const float* B,
                   global float* C, int n) {
    local float tA[256];
    local float tB[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    int tiles = n / 16;
    for (int t = 0; t < tiles; t += 1) {
        tA[ly * 16 + lx] = A[row * n + t * 16 + lx];
        tB[ly * 16 + lx] = B[(t * 16 + ly) * n + col];
        barrier();
        for (int k = 0; k < 16; k += 1) {
            acc += tA[ly * 16 + k] * tB[k * 16 + lx];
        }
        barrier();
    }
    C[row * n + col] = acc;
}

// 3: 4 outputs per thread (work-group 16x4 computes a 16x16 tile).
kernel void sgemm3(global const float* A, global const float* B,
                   global float* C, int n) {
    local float tA[256];
    local float tB[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_group_id(0) * 16 + lx;
    int row0 = get_group_id(1) * 16 + ly;
    float acc0 = 0.0f;
    float acc1 = 0.0f;
    float acc2 = 0.0f;
    float acc3 = 0.0f;
    int tiles = n / 16;
    for (int t = 0; t < tiles; t += 1) {
        for (int w = 0; w < 4; w += 1) {
            tA[(ly + w * 4) * 16 + lx] =
                A[(row0 + w * 4) * n + t * 16 + lx];
            tB[(ly + w * 4) * 16 + lx] =
                B[(t * 16 + ly + w * 4) * n + col];
        }
        barrier();
        for (int k = 0; k < 16; k += 1) {
            float bk = tB[k * 16 + lx];
            acc0 += tA[ly * 16 + k] * bk;
            acc1 += tA[(ly + 4) * 16 + k] * bk;
            acc2 += tA[(ly + 8) * 16 + k] * bk;
            acc3 += tA[(ly + 12) * 16 + k] * bk;
        }
        barrier();
    }
    C[row0 * n + col] = acc0;
    C[(row0 + 4) * n + col] = acc1;
    C[(row0 + 8) * n + col] = acc2;
    C[(row0 + 12) * n + col] = acc3;
}

// 4: 32-wide tiles with 4-element (float4-like) accesses: main memory
// traffic per output halves again; nearly all reads hit local storage.
kernel void sgemm4(global const float* A, global const float* B,
                   global float* C, int n) {
    local float tA[1024];
    local float tB[1024];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_group_id(0) * 32;
    int gy = get_group_id(1) * 32;
    float acc00 = 0.0f;
    float acc01 = 0.0f;
    float acc10 = 0.0f;
    float acc11 = 0.0f;
    int tiles = n / 32;
    for (int t = 0; t < tiles; t += 1) {
        // Each of the 256 threads loads one 4-wide vector per matrix.
        int flat = ly * 16 + lx;
        int lrow = flat / 8;
        int lcol4 = (flat % 8) * 4;
        int arow = gy + lrow;
        int acol = t * 32 + lcol4;
        tA[lrow * 32 + lcol4] = A[arow * n + acol];
        tA[lrow * 32 + lcol4 + 1] = A[arow * n + acol + 1];
        tA[lrow * 32 + lcol4 + 2] = A[arow * n + acol + 2];
        tA[lrow * 32 + lcol4 + 3] = A[arow * n + acol + 3];
        int brow = t * 32 + lrow;
        int bcol = gx + lcol4;
        tB[lrow * 32 + lcol4] = B[brow * n + bcol];
        tB[lrow * 32 + lcol4 + 1] = B[brow * n + bcol + 1];
        tB[lrow * 32 + lcol4 + 2] = B[brow * n + bcol + 2];
        tB[lrow * 32 + lcol4 + 3] = B[brow * n + bcol + 3];
        barrier();
        for (int k = 0; k < 32; k += 1) {
            float a0 = tA[(2 * ly) * 32 + k];
            float a1 = tA[(2 * ly + 1) * 32 + k];
            float b0 = tB[k * 32 + 2 * lx];
            float b1 = tB[k * 32 + 2 * lx + 1];
            acc00 += a0 * b0;
            acc01 += a0 * b1;
            acc10 += a1 * b0;
            acc11 += a1 * b1;
        }
        barrier();
    }
    int row = gy + 2 * ly;
    int col = gx + 2 * lx;
    C[row * n + col] = acc00;
    C[row * n + col + 1] = acc01;
    C[(row + 1) * n + col] = acc10;
    C[(row + 1) * n + col + 1] = acc11;
}

// 5: tiling over a pre-transposed B (coalescing-oriented desktop
// optimisation; Bt[c*n+k] = B[k*n+c], transposed by the host).
kernel void sgemm5(global const float* A, global const float* Bt,
                   global float* C, int n) {
    local float tA[256];
    local float tB[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    int tiles = n / 16;
    for (int t = 0; t < tiles; t += 1) {
        tA[ly * 16 + lx] = A[row * n + t * 16 + lx];
        tB[lx * 16 + ly] = Bt[col * n + t * 16 + ly];
        barrier();
        for (int k = 0; k < 16; k += 1) {
            acc += tA[ly * 16 + k] * tB[lx * 16 + k];
        }
        barrier();
    }
    C[row * n + col] = acc;
}

// 6: 2x2 register blocking straight out of DRAM — maximises register
// reuse (a desktop win) at the price of main-memory traffic.
kernel void sgemm6(global const float* A, global const float* B,
                   global float* C, int n) {
    int col = get_global_id(0) * 2;
    int row = get_global_id(1) * 2;
    float acc00 = 0.0f;
    float acc01 = 0.0f;
    float acc10 = 0.0f;
    float acc11 = 0.0f;
    for (int k = 0; k < n; k += 1) {
        float a0 = A[row * n + k];
        float a1 = A[(row + 1) * n + k];
        float b0 = B[k * n + col];
        float b1 = B[k * n + col + 1];
        acc00 += a0 * b0;
        acc01 += a0 * b1;
        acc10 += a1 * b0;
        acc11 += a1 * b1;
    }
    C[row * n + col] = acc00;
    C[row * n + col + 1] = acc01;
    C[(row + 1) * n + col] = acc10;
    C[(row + 1) * n + col + 1] = acc11;
}
)";
}

std::vector<SgemmVariantResult>
runSgemmVariants(rt::Session &session, uint32_t n,
                 const kclc::CompilerOptions &opts)
{
    if (n % 32 != 0)
        simError("sgemm variants need n to be a multiple of 32");

    std::vector<SgemmVariantResult> results;

    // Inputs.
    std::vector<float> a(static_cast<size_t>(n) * n);
    std::vector<float> b(a.size()), bt(a.size());
    uint64_t seed = 0x9E3779B97F4A7C15ull;
    auto rnd = [&seed] {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        return static_cast<float>((seed >> 32) & 0xffff) / 65536.0f -
               0.5f;
    };
    for (float &v : a)
        v = rnd();
    for (float &v : b)
        v = rnd();
    for (uint32_t r = 0; r < n; ++r)
        for (uint32_t c = 0; c < n; ++c)
            bt[c * n + r] = b[r * n + c];

    std::vector<float> want(a.size(), 0.0f);
    for (uint32_t r = 0; r < n; ++r) {
        for (uint32_t k = 0; k < n; ++k) {
            float av = a[r * n + k];
            for (uint32_t c = 0; c < n; ++c)
                want[r * n + c] += av * b[k * n + c];
        }
    }

    rt::Buffer da = session.alloc(a.size() * 4);
    rt::Buffer db = session.alloc(b.size() * 4);
    rt::Buffer dbt = session.alloc(bt.size() * 4);
    rt::Buffer dc = session.alloc(want.size() * 4);
    session.write(da, a.data(), a.size() * 4);
    session.write(db, b.data(), b.size() * 4);
    session.write(dbt, bt.data(), bt.size() * 4);

    struct Launch
    {
        const char *kernel;
        rt::NDRange global;
        rt::NDRange local;
        bool transposedB;
    };
    const Launch launches[6] = {
        {"sgemm1", {n, n, 1}, {16, 16, 1}, false},
        {"sgemm2", {n, n, 1}, {16, 16, 1}, false},
        {"sgemm3", {n, n / 4, 1}, {16, 4, 1}, false},
        {"sgemm4", {n / 2, n / 2, 1}, {16, 16, 1}, false},
        {"sgemm5", {n, n, 1}, {16, 16, 1}, true},
        {"sgemm6", {n / 2, n / 2, 1}, {16, 16, 1}, false},
    };

    std::vector<std::string> names = sgemmVariantNames();
    std::vector<float> got(want.size());
    for (int v = 0; v < 6; ++v) {
        SgemmVariantResult res;
        res.name = names[v];
        try {
            rt::KernelHandle k = session.compile(
                sgemmVariantsSource(), launches[v].kernel, opts);
            res.regCount = k.info.regCount;
            std::vector<float> zero(want.size(), 0.0f);
            session.write(dc, zero.data(), zero.size() * 4);
            gpu::JobResult jr = session.enqueue(
                k, launches[v].global, launches[v].local,
                {rt::Arg::buf(da),
                 rt::Arg::buf(launches[v].transposedB ? dbt : db),
                 rt::Arg::buf(dc),
                 rt::Arg::i32(static_cast<int32_t>(n))});
            if (jr.faulted) {
                res.error = jr.fault.detail;
                results.push_back(res);
                continue;
            }
            res.stats = jr.kernel;
            session.read(dc, got.data(), got.size() * 4);
            bool match = true;
            for (size_t i = 0; i < got.size() && match; ++i) {
                float diff = std::fabs(got[i] - want[i]);
                if (diff > 1e-2f + 1e-3f * std::fabs(want[i]))
                    match = false;
            }
            res.ok = match;
            if (!match)
                res.error = "output mismatch";
        } catch (const SimError &e) {
            res.error = e.what();
        }
        results.push_back(res);
    }
    return results;
}

} // namespace bifsim::workloads
