#ifndef BIFSIM_WORKLOADS_MATMUL_H
#define BIFSIM_WORKLOADS_MATMUL_H

/**
 * @file
 * The MatrixMul kernel used by the Fig. 1 compiler-version study: a
 * 16x16 locally-tiled matrix multiplication, compiled with each
 * emulated toolchain version to show how much the emitted code
 * changes between compiler releases.
 */

namespace bifsim::workloads {

/** Tiled matrix multiply (C = A x B), square size, tile 16. */
inline const char *kMatrixMulSource = R"(
kernel void matrixmul(global const float* A, global const float* B,
                      global float* C, int n) {
    local float tileA[256];
    local float tileB[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    int tiles = n / 16;
    for (int t = 0; t < tiles; t += 1) {
        tileA[ly * 16 + lx] = A[row * n + t * 16 + lx];
        tileB[ly * 16 + lx] = B[(t * 16 + ly) * n + col];
        barrier();
        for (int k = 0; k < 16; k += 1) {
            acc += tileA[ly * 16 + k] * tileB[k * 16 + lx];
        }
        barrier();
    }
    C[row * n + col] = acc;
}
)";

} // namespace bifsim::workloads

#endif // BIFSIM_WORKLOADS_MATMUL_H
