#include "workloads/workload.h"

#include <map>

#include "common/logging.h"

namespace bifsim::workloads {

// Factories implemented in kernels_amdapp.cc / kernels_parboil.cc.
std::unique_ptr<Workload> makeBinarySearch(double s);
std::unique_ptr<Workload> makeBinomialOption(double s);
std::unique_ptr<Workload> makeBitonicSort(double s);
std::unique_ptr<Workload> makeDct(double s);
std::unique_ptr<Workload> makeDwtHaar1D(double s);
std::unique_ptr<Workload> makeFloydWarshall(double s);
std::unique_ptr<Workload> makeMatrixTranspose(double s);
std::unique_ptr<Workload> makeRecursiveGaussian(double s);
std::unique_ptr<Workload> makeReduction(double s);
std::unique_ptr<Workload> makeScanLargeArrays(double s);
std::unique_ptr<Workload> makeSobelFilter(double s);
std::unique_ptr<Workload> makeUrng(double s);
std::unique_ptr<Workload> makeBackProp(double s);
std::unique_ptr<Workload> makeBfs(double s);
std::unique_ptr<Workload> makeCutcp(double s);
std::unique_ptr<Workload> makeNearestNeighbor(double s);
std::unique_ptr<Workload> makeSgemm(double s);
std::unique_ptr<Workload> makeSpmv(double s);
std::unique_ptr<Workload> makeStencil(double s);

namespace {

using Factory = std::unique_ptr<Workload> (*)(double);

const std::map<std::string, Factory> &
registry()
{
    static const std::map<std::string, Factory> reg = {
        {"backprop", makeBackProp},
        {"bfs", makeBfs},
        {"binarysearch", makeBinarySearch},
        {"binomialoption", makeBinomialOption},
        {"bitonicsort", makeBitonicSort},
        {"cutcp", makeCutcp},
        {"dct", makeDct},
        {"dwthaar1d", makeDwtHaar1D},
        {"floydwarshall", makeFloydWarshall},
        {"matrixtranspose", makeMatrixTranspose},
        {"nn", makeNearestNeighbor},
        {"recursivegaussian", makeRecursiveGaussian},
        {"reduction", makeReduction},
        {"scanlargearrays", makeScanLargeArrays},
        {"sgemm", makeSgemm},
        {"sobelfilter", makeSobelFilter},
        {"spmv", makeSpmv},
        {"stencil", makeStencil},
        {"urng", makeUrng},
    };
    return reg;
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, double scale)
{
    auto it = registry().find(name);
    if (it == registry().end())
        simError("unknown workload '%s'", name.c_str());
    return it->second(scale);
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    return names;
}

std::vector<std::string>
fig7WorkloadNames()
{
    return {"binarysearch", "binomialoption", "bitonicsort", "dct",
            "dwthaar1d",    "matrixtranspose", "reduction",
            "sobelfilter",  "urng"};
}

std::vector<std::string>
fig8WorkloadNames()
{
    return {"binarysearch",      "binomialoption", "bitonicsort",
            "dct",               "dwthaar1d",      "floydwarshall",
            "matrixtranspose",   "recursivegaussian", "reduction",
            "scanlargearrays",   "sobelfilter",    "sgemm",
            "stencil"};
}

} // namespace bifsim::workloads
