#ifndef BIFSIM_TRACE_TRACE_H
#define BIFSIM_TRACE_TRACE_H

/**
 * @file
 * Low-overhead job-lifecycle tracing for the whole simulator.
 *
 * Every host thread that produces events (the CPU/driver thread, the
 * Job Manager thread, each GPU worker) owns a TraceBuffer: a
 * fixed-capacity single-producer ring of timestamped events.  Writers
 * never take a lock and never allocate on the hot path; the ring wraps,
 * keeping the newest events.  Disabled tracing costs exactly one
 * predictable branch per event site: the Tracer hands out null buffer
 * pointers, and every site is gated on `if (buf)`.
 *
 * The event vocabulary follows the full job lifecycle:
 *
 *   js_submit (MMIO write) -> chain / desc_fetch / job (Job Manager)
 *   -> decode (shader decode cache hit/miss) -> verify (static shader
 *   analysis, cat "shader"; each finding is an instant named after its
 *   check class — e.g. "rom-bounds", "uninit-read" — in cat "verify")
 *   -> worker_exec / workgroup (per worker) -> mmu_walk / mmu_fault
 *   (translations) -> irq_raise -> driver_wake (host runtime or guest
 *   driver observed completion)
 *
 * Export is Chrome `trace_event` JSON (loadable in chrome://tracing or
 * ui.perfetto.dev) plus a human-readable per-job summary.  Export reads
 * the rings without stopping writers, so it should run while the device
 * is idle (e.g. after GpuDevice::waitIdle) for a consistent snapshot.
 *
 * Counter events carry the unified named-counter view of the existing
 * KernelStats / TlbStats / SystemStats structs (see
 * instrument/stats.h:appendCounters), recorded once per completed job.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace bifsim::trace {

/** Nanoseconds on the host steady clock since a process-wide epoch
 *  (fixed at first use), so events from any Tracer share a timeline. */
uint64_t nowNs();

/** Event kinds (map onto Chrome trace_event phases). */
enum class Phase : uint8_t
{
    Span,     ///< Complete event ("X"): ts + dur.
    Instant,  ///< Instant event ("i").
    Counter,  ///< Counter sample ("C").
};

/**
 * One trace event.  Name/category/argument-name strings must have
 * static storage duration (the ring stores the pointers only).
 */
struct Event
{
    const char *name = nullptr;
    const char *cat = nullptr;
    uint64_t ts = 0;       ///< Start time, ns (see nowNs()).
    uint64_t dur = 0;      ///< Duration, ns (Span only).
    Phase phase = Phase::Instant;
    uint8_t numArgs = 0;
    struct Arg
    {
        const char *name;
        uint64_t value;
    } args[2];
};

/**
 * Per-thread event ring.  Single producer (the owning thread, or
 * multiple threads serialised by an external lock, as for the device
 * MMIO buffer); drained by Tracer::exportChromeJson while quiesced.
 *
 * Threading: all event-recording methods (instant/span/counter) are
 * producer-only — exactly one thread (or an externally serialised
 * set) may call them per buffer; they never lock or allocate.  The
 * read side (size/pushed/snapshot) may run from any thread but only
 * sees a consistent ring when producers are quiescent (see the
 * export note above).
 */
class TraceBuffer
{
  public:
    TraceBuffer(std::string thread_name, size_t capacity);

    /** Instant event.  Threading: owning producer only. */
    void
    instant(const char *name, const char *cat)
    {
        pushNow(name, cat, Phase::Instant, 0, nullptr, 0, nullptr, 0);
    }

    void
    instant(const char *name, const char *cat, const char *a0n,
            uint64_t a0)
    {
        pushNow(name, cat, Phase::Instant, 1, a0n, a0, nullptr, 0);
    }

    void
    instant(const char *name, const char *cat, const char *a0n,
            uint64_t a0, const char *a1n, uint64_t a1)
    {
        pushNow(name, cat, Phase::Instant, 2, a0n, a0, a1n, a1);
    }

    /** Complete span: @p start_ts from an earlier nowNs() call.
     *  Threading: owning producer only. */
    void
    span(const char *name, const char *cat, uint64_t start_ts)
    {
        pushSpan(name, cat, start_ts, 0, nullptr, 0, nullptr, 0);
    }

    void
    span(const char *name, const char *cat, uint64_t start_ts,
         const char *a0n, uint64_t a0)
    {
        pushSpan(name, cat, start_ts, 1, a0n, a0, nullptr, 0);
    }

    void
    span(const char *name, const char *cat, uint64_t start_ts,
         const char *a0n, uint64_t a0, const char *a1n, uint64_t a1)
    {
        pushSpan(name, cat, start_ts, 2, a0n, a0, a1n, a1);
    }

    /** Counter sample (rendered as a track in chrome://tracing).
     *  Threading: owning producer only. */
    void counter(const char *name, uint64_t value);

    /** Threading: any thread (immutable after construction). */
    const std::string &threadName() const { return threadName_; }

    /** Events currently retained (<= capacity).  Threading: any
     *  thread; exact only while producers are quiescent. */
    size_t size() const;

    /** Total events ever pushed (>= size() once the ring wraps).
     *  Threading: any thread (atomic read). */
    uint64_t pushed() const
    {
        return count_.load(std::memory_order_acquire);
    }

    /** Copies the retained events, oldest first, into @p out.
     *  Threading: any thread, but call only while the producer is
     *  quiescent — a concurrent push can tear the copied slots. */
    void snapshot(std::vector<Event> &out) const;

  private:
    void pushNow(const char *name, const char *cat, Phase ph,
                 uint8_t nargs, const char *a0n, uint64_t a0,
                 const char *a1n, uint64_t a1);
    void pushSpan(const char *name, const char *cat, uint64_t start_ts,
                  uint8_t nargs, const char *a0n, uint64_t a0,
                  const char *a1n, uint64_t a1);
    void push(const Event &e);

    std::string threadName_;
    std::vector<Event> ring_;
    std::atomic<uint64_t> count_{0};   ///< Total pushed; next slot is
                                       ///< count_ % ring_.size().
};

/**
 * Owns the per-thread buffers and performs export.  One Tracer per
 * GpuDevice (reachable as gpu().tracer() / Session::tracer()); when
 * constructed disabled it hands out null buffers and everything else
 * is a no-op.
 */
class Tracer
{
  public:
    explicit Tracer(bool enabled, size_t buffer_events = 1u << 14);

    /** Threading: any thread (immutable after construction). */
    bool enabled() const { return enabled_; }

    /**
     * Registers a producer thread and returns its buffer (stable for
     * the Tracer's lifetime), or nullptr when tracing is disabled —
     * callers keep the pointer and gate each event site on it.
     * Threading: any thread (registration serialises on an internal
     * lock); typically called once from each thread at startup.
     */
    TraceBuffer *registerThread(const std::string &name)
        EXCLUDES(lock_);

    /** Total events currently retained across all buffers.
     *  Threading: any thread; approximate while producers run. */
    size_t eventCount() const EXCLUDES(lock_);

    /** Writes Chrome trace_event JSON ({"traceEvents":[...]}).
     *  Threading: any thread, but producers must be quiescent (e.g.
     *  after GpuDevice::waitIdle) for a consistent snapshot. */
    void exportChromeJson(std::ostream &os) const EXCLUDES(lock_);

    /** Writes the JSON to @p path; false on I/O failure.
     *  Threading: as exportChromeJson. */
    bool exportChromeJsonFile(const std::string &path) const;

    /** Human-readable per-job summary plus aggregate span/counter
     *  tables.  Threading: as exportChromeJson. */
    void writeSummary(std::ostream &os) const;

  private:
    /** All retained events merged and sorted by timestamp, with the
     *  owning buffer's index attached as a tid. */
    struct TaggedEvent
    {
        Event e;
        unsigned tid;
    };
    std::vector<TaggedEvent> merged() const EXCLUDES(lock_);

    bool enabled_;
    size_t cap_;
    mutable sim::Mutex lock_;   ///< Guards buffers_ (registration).
    std::vector<std::unique_ptr<TraceBuffer>> buffers_ GUARDED_BY(lock_);
};

} // namespace bifsim::trace

#endif // BIFSIM_TRACE_TRACE_H
