#include "trace/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <string_view>

namespace bifsim::trace {

uint64_t
nowNs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - epoch)
            .count());
}

TraceBuffer::TraceBuffer(std::string thread_name, size_t capacity)
    : threadName_(std::move(thread_name)),
      ring_(std::max<size_t>(capacity, 16))
{
}

void
TraceBuffer::push(const Event &e)
{
    uint64_t n = count_.load(std::memory_order_relaxed);
    ring_[n % ring_.size()] = e;
    count_.store(n + 1, std::memory_order_release);
}

void
TraceBuffer::pushNow(const char *name, const char *cat, Phase ph,
                     uint8_t nargs, const char *a0n, uint64_t a0,
                     const char *a1n, uint64_t a1)
{
    Event e;
    e.name = name;
    e.cat = cat;
    e.ts = nowNs();
    e.phase = ph;
    e.numArgs = nargs;
    e.args[0] = {a0n, a0};
    e.args[1] = {a1n, a1};
    push(e);
}

void
TraceBuffer::pushSpan(const char *name, const char *cat,
                      uint64_t start_ts, uint8_t nargs, const char *a0n,
                      uint64_t a0, const char *a1n, uint64_t a1)
{
    Event e;
    e.name = name;
    e.cat = cat;
    e.ts = start_ts;
    uint64_t end = nowNs();
    e.dur = end > start_ts ? end - start_ts : 0;
    e.phase = Phase::Span;
    e.numArgs = nargs;
    e.args[0] = {a0n, a0};
    e.args[1] = {a1n, a1};
    push(e);
}

void
TraceBuffer::counter(const char *name, uint64_t value)
{
    Event e;
    e.name = name;
    e.cat = "counter";
    e.ts = nowNs();
    e.phase = Phase::Counter;
    e.numArgs = 1;
    e.args[0] = {"value", value};
    e.args[1] = {nullptr, 0};
    push(e);
}

size_t
TraceBuffer::size() const
{
    return static_cast<size_t>(
        std::min<uint64_t>(pushed(), ring_.size()));
}

void
TraceBuffer::snapshot(std::vector<Event> &out) const
{
    uint64_t n = pushed();
    uint64_t first = n > ring_.size() ? n - ring_.size() : 0;
    out.reserve(out.size() + static_cast<size_t>(n - first));
    for (uint64_t i = first; i < n; ++i)
        out.push_back(ring_[i % ring_.size()]);
}

Tracer::Tracer(bool enabled, size_t buffer_events)
    : enabled_(enabled), cap_(buffer_events)
{
}

TraceBuffer *
Tracer::registerThread(const std::string &name)
{
    if (!enabled_)
        return nullptr;
    sim::LockGuard g(lock_);
    buffers_.push_back(std::make_unique<TraceBuffer>(name, cap_));
    return buffers_.back().get();
}

size_t
Tracer::eventCount() const
{
    sim::LockGuard g(lock_);
    size_t n = 0;
    for (const auto &b : buffers_)
        n += b->size();
    return n;
}

std::vector<Tracer::TaggedEvent>
Tracer::merged() const
{
    std::vector<TaggedEvent> out;
    sim::LockGuard g(lock_);
    std::vector<Event> tmp;
    for (unsigned i = 0; i < buffers_.size(); ++i) {
        tmp.clear();
        buffers_[i]->snapshot(tmp);
        for (const Event &e : tmp)
            out.push_back(TaggedEvent{e, i});
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TaggedEvent &a, const TaggedEvent &b) {
                         return a.e.ts < b.e.ts;
                     });
    return out;
}

namespace {

/** Microseconds with sub-us precision, as Chrome expects in "ts". */
void
writeUs(std::ostream &os, uint64_t ns)
{
    os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
       << static_cast<char>('0' + (ns % 100) / 10)
       << static_cast<char>('0' + ns % 10);
}

void
writeArgs(std::ostream &os, const Event &e)
{
    os << "\"args\":{";
    for (uint8_t i = 0; i < e.numArgs; ++i) {
        if (i)
            os << ',';
        os << '"' << e.args[i].name << "\":" << e.args[i].value;
    }
    os << '}';
}

} // namespace

void
Tracer::exportChromeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    {
        sim::LockGuard g(lock_);
        for (unsigned i = 0; i < buffers_.size(); ++i) {
            if (!first)
                os << ",\n";
            first = false;
            os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << i
               << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
               << buffers_[i]->threadName() << "\"}}";
        }
    }
    for (const TaggedEvent &te : merged()) {
        const Event &e = te.e;
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << e.name << "\",\"cat\":\""
           << (e.cat ? e.cat : "") << "\",\"ph\":\"";
        switch (e.phase) {
          case Phase::Span:    os << 'X'; break;
          case Phase::Instant: os << 'i'; break;
          case Phase::Counter: os << 'C'; break;
        }
        os << "\",\"ts\":";
        writeUs(os, e.ts);
        if (e.phase == Phase::Span) {
            os << ",\"dur\":";
            writeUs(os, e.dur);
        }
        if (e.phase == Phase::Instant)
            os << ",\"s\":\"t\"";
        os << ",\"pid\":0,\"tid\":" << te.tid << ',';
        writeArgs(os, e);
        os << '}';
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool
Tracer::exportChromeJsonFile(const std::string &path) const
{
    std::ofstream ofs(path);
    if (!ofs)
        return false;
    exportChromeJson(ofs);
    return ofs.good();
}

void
Tracer::writeSummary(std::ostream &os) const
{
    std::vector<TaggedEvent> evs = merged();

    struct SpanAgg
    {
        uint64_t count = 0;
        uint64_t totalNs = 0;
    };
    std::map<std::string, SpanAgg> spans;
    std::map<std::string, uint64_t> instants;
    std::map<std::string, uint64_t> counters;   // Last value wins.
    unsigned jobIndex = 0;

    os << "trace summary: " << evs.size() << " events\n";
    os << " jobs:\n";
    for (const TaggedEvent &te : evs) {
        const Event &e = te.e;
        switch (e.phase) {
          case Phase::Span:
            spans[e.name].count++;
            spans[e.name].totalNs += e.dur;
            if (std::string_view(e.name) == "job") {
                os << "   job #" << jobIndex++ << ": "
                   << static_cast<double>(e.dur) / 1e6 << " ms";
                for (uint8_t i = 0; i < e.numArgs; ++i)
                    os << ", " << e.args[i].name << '='
                       << e.args[i].value;
                os << '\n';
            }
            break;
          case Phase::Instant:
            instants[e.name]++;
            break;
          case Phase::Counter:
            counters[e.name] = e.args[0].value;
            break;
        }
    }
    os << " spans:\n";
    for (const auto &[name, agg] : spans)
        os << "   " << name << " x" << agg.count << " total "
           << static_cast<double>(agg.totalNs) / 1e6 << " ms\n";
    os << " instants:\n";
    for (const auto &[name, n] : instants)
        os << "   " << name << " x" << n << '\n';
    os << " counters (latest):\n";
    for (const auto &[name, v] : counters)
        os << "   " << name << " = " << v << '\n';
}

} // namespace bifsim::trace
