#ifndef BIFSIM_GUESTOS_GUEST_OS_H
#define BIFSIM_GUESTOS_GUEST_OS_H

/**
 * @file
 * The mini guest operating system and its GPU kernel driver.
 *
 * This is the full-system substitution for the paper's Arm Linux +
 * vendor Mali driver stack: real guest code, executed by the simulated
 * CPU, that builds GPU page tables in shared memory, programs the Job
 * Manager registers, sleeps in WFI, and handles GPU completion
 * interrupts — exactly the CPU-GPU transaction sequence the paper
 * measures (Fig. 9, Table III).
 *
 * Host <-> guest communication uses a mailbox page in guest RAM:
 *
 *   +0  CMD       host writes: 1=submit job chain, 2=ping,
 *                 3=enter user mode
 *   +4  STATUS    guest writes: 0 idle, 1 busy, 2 done
 *   +8  DESC_VA   GPU VA of the first job descriptor (cmd 1)
 *                 / user entry PC (cmd 3)
 *   +12 MAPLIST   physical address of the mapping request list (cmd 1)
 *                 / satp value (cmd 3)
 *   +16 MAPCOUNT  number of mapping requests
 *   +20 PTROOT    physical address of the GPU page-table root
 *   +24 PTBUMP    bump allocator for level-0 tables (updated by guest)
 *   +28 RESULT    0 = ok, 1 = GPU fault
 *   +32 IRQFLAG   set by the IRQ handler with the final JS_STATUS
 *   +36 IRQCOUNT  number of GPU interrupts handled (diagnostics)
 *   +40 WAKES     number of times the driver's WFI wait loop observed
 *                 the completion flag (trace: guest driver wake-ups)
 *
 * A mapping request is 16 bytes: {gpu_va, pa, npages, flags(bit0=W)}.
 */

#include <cstdint>
#include <string>

#include "cpu/asm/assembler.h"
#include "mem/device.h"

namespace bifsim::guestos {

/** Fixed guest-physical layout of the OS image. */
struct Layout
{
    Addr base;        ///< OS code load address (reset PC).
    Addr stackTop;    ///< Machine-mode stack.
    Addr mailbox;     ///< Mailbox page.
    Addr saveArea;    ///< Trap-handler register save area.
};

/** Mailbox field offsets. */
enum MailboxOffset : uint32_t
{
    kMbCmd = 0,
    kMbStatus = 4,
    kMbDescVa = 8,
    kMbMapList = 12,
    kMbMapCount = 16,
    kMbPtRoot = 20,
    kMbPtBump = 24,
    kMbResult = 28,
    kMbIrqFlag = 32,
    kMbIrqCount = 36,
    kMbWakes = 40,
};

/** Mailbox command values. */
enum MailboxCmd : uint32_t
{
    kCmdNone = 0,
    kCmdSubmit = 1,
    kCmdPing = 2,
    kCmdEnterUser = 3,
};

/** Returns the default layout for a RAM base. */
Layout defaultLayout(Addr ram_base);

/** Returns the guest OS assembly source (parameterised by layout and
 *  device base addresses via predefined assembler symbols). */
std::string osSource();

/**
 * Assembles the guest OS for the given platform addresses.
 *
 * @param layout     Guest memory layout.
 * @param uart_base  UART MMIO base.
 * @param intc_base  Interrupt controller MMIO base.
 * @param gpu_base   GPU MMIO base.
 * @param gpu_intc_line  INTC line the GPU is wired to.
 */
sa32::Program buildOs(const Layout &layout, Addr uart_base,
                      Addr intc_base, Addr gpu_base,
                      unsigned gpu_intc_line);

} // namespace bifsim::guestos

#endif // BIFSIM_GUESTOS_GUEST_OS_H
