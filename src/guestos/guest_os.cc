#include "guestos/guest_os.h"

namespace bifsim::guestos {

Layout
defaultLayout(Addr ram_base)
{
    Layout l;
    l.base = ram_base;
    l.stackTop = ram_base + 0xf000;
    l.mailbox = ram_base + 0x10000;
    l.saveArea = ram_base + 0x10040;
    return l;
}

std::string
osSource()
{
    // Register conventions: s0 = mailbox base throughout the driver.
    // The trap handler preserves t0..t4 through MSCRATCH + SAVE_AREA.
    return R"(
        .org OS_BASE

reset:
        li   sp, STACK_TOP
        la   t0, trap_handler
        csrw mtvec, t0
        li   t0, 0x800              # mie.MEIE (external interrupts)
        csrw mie, t0
        li   t0, 0x8                # mstatus.MIE
        csrw mstatus, t0
        # Enable the GPU line in the interrupt controller.
        li   t0, INTC_BASE
        li   t1, GPU_LINE_MASK
        sw   t1, 4(t0)              # INTC_ENABLE
        # Unmask all GPU interrupt sources.
        li   t0, GPU_BASE
        li   t1, 7
        sw   t1, 0xC(t0)            # GPU_IRQ_MASK
        li   s0, MAILBOX

main_loop:
        lw   t0, 0(s0)              # CMD
        beqz t0, main_loop
        li   t1, 1
        sw   t1, 4(s0)              # STATUS = busy
        li   t1, 1
        beq  t0, t1, do_submit
        li   t1, 2
        beq  t0, t1, cmd_done       # ping
        li   t1, 3
        beq  t0, t1, do_user
        j    cmd_done

# ------------------------------------------------------------------
# CMD 1: map buffers into the GPU address space, then submit the job
# chain and sleep until the Job Manager interrupts with completion.
# ------------------------------------------------------------------
do_submit:
        call install_mappings
        li   t0, GPU_BASE
        lw   t1, 20(s0)             # PTROOT
        sw   t1, 0x30(t0)           # AS_TRANSTAB
        li   t1, 1
        sw   t1, 0x34(t0)           # AS_COMMAND (TLB flush)
        sw   zero, 32(s0)           # IRQFLAG = 0
        lw   t1, 8(s0)              # DESC_VA
        sw   t1, 0x20(t0)           # JS_SUBMIT
        li   t3, 8                  # mstatus.MIE
# Canonical race-free wait: mask interrupts, re-check the flag, then
# wfi.  A completion IRQ landing between the check and the wfi stays
# pending (masked), so the wfi falls through instead of sleeping on a
# wakeup the handler already consumed.
wait_done:
        csrc mstatus, t3            # mask interrupts
        lw   t1, 32(s0)             # IRQFLAG (JS_STATUS when finished)
        bnez t1, have_flag
        wfi                         # Wakes on pending even while masked.
        csrs mstatus, t3            # unmask: deliver the interrupt now
        j    wait_done
have_flag:
        csrs mstatus, t3            # unmask before proceeding
        lw   t2, 40(s0)             # WAKES++ (driver wake diagnostics)
        addi t2, t2, 1
        sw   t2, 40(s0)
        li   t2, 2                  # JS_STATUS done
        beq  t1, t2, submit_ok
        li   t1, 1
        sw   t1, 28(s0)             # RESULT = fault
        j    cmd_done
submit_ok:
        sw   zero, 28(s0)           # RESULT = ok
cmd_done:
        sw   zero, 0(s0)            # CMD = 0 (consumed)
        li   t1, 2
        sw   t1, 4(s0)              # STATUS = done
        j    main_loop

# ------------------------------------------------------------------
# CMD 3: drop to user mode (paged) at DESC_VA with satp = MAPLIST.
# The user program returns to the OS via ecall.
# ------------------------------------------------------------------
do_user:
        lw   t1, 12(s0)             # satp value
        csrw satp, t1
        sfence
        lw   t1, 8(s0)              # user entry pc
        csrw mepc, t1
        li   t1, 0x80               # mstatus.MPIE (MPP=User)
        csrw mstatus, t1
        sw   zero, 0(s0)
        li   t1, 2
        sw   t1, 4(s0)
        mret

# ------------------------------------------------------------------
# Walks the host-prepared mapping list and installs GPU PTEs.  This is
# the driver work that scales with buffer sizes (paper Fig. 9).
# clobbers t0-t4, a0-a3, s1-s3
# ------------------------------------------------------------------
install_mappings:
        lw   s1, 12(s0)             # MAPLIST
        lw   s2, 16(s0)             # MAPCOUNT
        lw   s3, 20(s0)             # PTROOT
entry_loop:
        beqz s2, map_done
        lw   a0, 0(s1)              # gpu va
        lw   a1, 4(s1)              # pa
        lw   a2, 8(s1)              # npages
        lw   a3, 12(s1)             # flags
page_loop:
        beqz a2, next_entry
        srli t0, a0, 22             # vpn1
        slli t0, t0, 2
        add  t0, s3, t0             # &l1[vpn1]
        lw   t1, 0(t0)
        andi t2, t1, 1
        bnez t2, have_l0
        # Allocate a level-0 table from the (pre-zeroed) bump arena.
        lw   t2, 24(s0)             # PTBUMP
        mv   t3, t2
        li   t4, 4096
        add  t2, t2, t4
        sw   t2, 24(s0)
        srli t2, t3, 12
        slli t2, t2, 10
        ori  t2, t2, 1              # VALID
        sw   t2, 0(t0)
        mv   t1, t2
have_l0:
        srli t1, t1, 10             # l0 ppn
        slli t1, t1, 12             # l0 base
        srli t2, a0, 12
        andi t2, t2, 0x3ff          # vpn0
        slli t2, t2, 2
        add  t1, t1, t2             # &l0[vpn0]
        srli t2, a1, 12
        slli t2, t2, 10             # ppn field
        andi t3, a3, 1
        slli t3, t3, 1              # WRITE bit
        or   t2, t2, t3
        ori  t2, t2, 1              # VALID
        sw   t2, 0(t1)
        li   t3, 4096
        add  a0, a0, t3
        add  a1, a1, t3
        addi a2, a2, -1
        j    page_loop
next_entry:
        addi s1, s1, 16
        addi s2, s2, -1
        j    entry_loop
map_done:
        ret

# ------------------------------------------------------------------
# Trap handler: GPU completion interrupts and user-mode syscalls.
#   ecall a7=1: putchar(a0)    a7=2: exit (halts the simulation)
# ------------------------------------------------------------------
trap_handler:
        csrw mscratch, t0
        li   t0, SAVE_AREA
        sw   t1, 0(t0)
        sw   t2, 4(t0)
        sw   t3, 8(t0)
        sw   t4, 12(t0)

        csrr t1, mcause
        li   t2, 0x8000000B         # machine external interrupt
        bne  t1, t2, check_ecall
        # Claim the line from the interrupt controller.
        li   t1, INTC_BASE
        lw   t2, 8(t1)              # INTC_CLAIM (line + 1)
        li   t3, GPU_LINE_PLUS1
        bne  t2, t3, restore
        # Acknowledge the GPU: clear what is pending.
        li   t1, GPU_BASE
        lw   t2, 0x10(t1)           # GPU_IRQ_STATUS
        sw   t2, 8(t1)              # GPU_IRQ_CLEAR
        lw   t3, 0x24(t1)           # JS_STATUS
        li   t1, MAILBOX
        lw   t2, 36(t1)
        addi t2, t2, 1
        sw   t2, 36(t1)             # IRQCOUNT++
        li   t4, 2
        bltu t3, t4, restore        # still running: wait for more
        sw   t3, 32(t1)             # IRQFLAG = final status
        j    restore

check_ecall:
        li   t2, 8                  # ecall from U-mode
        bne  t1, t2, restore
        csrr t1, mepc
        addi t1, t1, 4
        csrw mepc, t1
        li   t1, 1
        bne  a7, t1, sys_exit
        li   t1, UART_BASE
        sw   a0, 0(t1)              # putchar
        j    restore
sys_exit:
        li   t1, 2
        bne  a7, t1, restore
        halt

restore:
        li   t0, SAVE_AREA
        lw   t1, 0(t0)
        lw   t2, 4(t0)
        lw   t3, 8(t0)
        lw   t4, 12(t0)
        csrr t0, mscratch
        mret
)";
}

sa32::Program
buildOs(const Layout &layout, Addr uart_base, Addr intc_base,
        Addr gpu_base, unsigned gpu_intc_line)
{
    std::map<std::string, Addr> syms;
    syms["OS_BASE"] = layout.base;
    syms["STACK_TOP"] = layout.stackTop;
    syms["MAILBOX"] = layout.mailbox;
    syms["SAVE_AREA"] = layout.saveArea;
    syms["UART_BASE"] = uart_base;
    syms["INTC_BASE"] = intc_base;
    syms["GPU_BASE"] = gpu_base;
    syms["GPU_LINE_MASK"] = Addr{1} << gpu_intc_line;
    syms["GPU_LINE_PLUS1"] = gpu_intc_line + 1;
    return sa32::assemble(osSource(), syms);
}

} // namespace bifsim::guestos
