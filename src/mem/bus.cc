#include "mem/bus.h"

#include "common/bits.h"

namespace bifsim {

Device *
Bus::deviceAt(Addr addr, Addr &base_out) const
{
    for (const Mapping &m : mappings_) {
        if (addr >= m.base && addr - m.base < m.size) {
            base_out = m.base;
            return m.dev;
        }
    }
    return nullptr;
}

BusResult
Bus::read(Addr addr, unsigned size, uint64_t &out)
{
    if (mem_ && mem_->contains(addr, size)) {
        switch (size) {
          case 1: out = mem_->read<uint8_t>(addr); return BusResult::Ok;
          case 2: out = mem_->read<uint16_t>(addr); return BusResult::Ok;
          case 4: out = mem_->read<uint32_t>(addr); return BusResult::Ok;
          case 8: out = mem_->read<uint64_t>(addr); return BusResult::Ok;
          default: return BusResult::BadSize;
        }
    }
    Addr base = 0;
    if (Device *dev = deviceAt(addr, base)) {
        if (size != 4)
            return BusResult::BadSize;
        if (!isAligned(addr, 4))
            return BusResult::Misaligned;
        out = dev->mmioRead(addr - base);
        return BusResult::Ok;
    }
    return BusResult::Unmapped;
}

BusResult
Bus::write(Addr addr, unsigned size, uint64_t value)
{
    if (mem_ && mem_->contains(addr, size)) {
        switch (size) {
          case 1: mem_->write<uint8_t>(addr, value); return BusResult::Ok;
          case 2: mem_->write<uint16_t>(addr, value); return BusResult::Ok;
          case 4: mem_->write<uint32_t>(addr, value); return BusResult::Ok;
          case 8: mem_->write<uint64_t>(addr, value); return BusResult::Ok;
          default: return BusResult::BadSize;
        }
    }
    Addr base = 0;
    if (Device *dev = deviceAt(addr, base)) {
        if (size != 4)
            return BusResult::BadSize;
        if (!isAligned(addr, 4))
            return BusResult::Misaligned;
        dev->mmioWrite(addr - base, static_cast<uint32_t>(value));
        return BusResult::Ok;
    }
    return BusResult::Unmapped;
}

} // namespace bifsim
