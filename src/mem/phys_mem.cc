#include "mem/phys_mem.h"

#include <algorithm>
#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace bifsim {

namespace {

/** Reference zero page: memcmp against it beats any hand loop. */
alignas(64) const uint8_t kZeroPage[PhysMem::kPageBytes] = {};

bool
pageIsZero(const uint8_t *p, size_t len)
{
    if (len == PhysMem::kPageBytes)
        return std::memcmp(p, kZeroPage, PhysMem::kPageBytes) == 0;
    return std::memcmp(p, kZeroPage, std::min(len, sizeof kZeroPage)) ==
           0;
}

} // namespace

PhysMem::PhysMem(Addr base, size_t size) : base_(base), size_(size)
{
    const size_t alloc = size_ ? size_ : 1;
#if defined(__linux__)
    void *p = ::mmap(nullptr, alloc, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        data_ = static_cast<uint8_t *>(p);
        mmapped_ = true;
        return;
    }
#endif
    data_ = static_cast<uint8_t *>(std::calloc(alloc, 1));
    if (!data_)
        throw std::bad_alloc();
}

PhysMem::~PhysMem()
{
#if defined(__linux__)
    if (mmapped_) {
        ::munmap(data_, size_ ? size_ : 1);
        return;
    }
#endif
    std::free(data_);
}

void
PhysMem::clear()
{
#if defined(__linux__)
    // Drop the materialised pages instead of writing zeroes: untouched
    // pages stay unmapped and re-fault as zero on next access, so the
    // cost tracks the guest's working set, not the RAM size.
    if (mmapped_ && size_ &&
        ::madvise(data_, size_, MADV_DONTNEED) == 0)
        return;
#endif
    std::memset(data_, 0, size_);
}

void
PhysMem::saveState(snapshot::ChunkWriter &w) const
{
    const size_t n_pages =
        (size_ + kPageBytes - 1) / kPageBytes;

    w.u64(base_);
    w.u64(size_);
    w.u32(static_cast<uint32_t>(kPageBytes));

    // First pass: build the run table (start page + page count of each
    // maximal stretch of non-zero pages).
    struct Run
    {
        uint32_t start;
        uint32_t count;
    };
    std::vector<Run> runs;
    for (size_t p = 0; p < n_pages; ++p) {
        size_t off = p * kPageBytes;
        size_t len = std::min(kPageBytes, size_ - off);
        if (pageIsZero(data_ + off, len))
            continue;
        if (!runs.empty() &&
            runs.back().start + runs.back().count == p) {
            ++runs.back().count;
        } else {
            runs.push_back(Run{static_cast<uint32_t>(p), 1});
        }
    }

    w.u32(static_cast<uint32_t>(runs.size()));
    for (const Run &r : runs) {
        size_t off = static_cast<size_t>(r.start) * kPageBytes;
        size_t end = std::min(off + static_cast<size_t>(r.count) *
                                        kPageBytes,
                              size_);
        w.u32(r.start);
        w.u32(r.count);
        w.bytes(data_ + off, end - off);
    }
}

void
PhysMem::restoreState(snapshot::ChunkReader &r)
{
    uint64_t base = r.u64();
    uint64_t size = r.u64();
    uint32_t page = r.u32();
    if (base != base_ || size != size_)
        r.fail(strfmt("RAM geometry mismatch: image has base 0x%llx "
                      "size %llu, system has base 0x%llx size %zu",
                      static_cast<unsigned long long>(base),
                      static_cast<unsigned long long>(size),
                      static_cast<unsigned long long>(base_),
                      size_));
    if (page != kPageBytes)
        r.fail(strfmt("unsupported page size %u", page));

    const size_t n_pages =
        (size_ + kPageBytes - 1) / kPageBytes;
    uint32_t n_runs = r.u32();
    // Every run carries an 8-byte header, so a count the payload could
    // not possibly back is hostile; reject before allocating anything.
    if (static_cast<uint64_t>(n_runs) * 8 > r.remaining())
        r.fail(strfmt("run count %u exceeds chunk size", n_runs));

    // Parse-then-commit: validate every run header and claim its
    // payload bytes (bounds-checked by raw()) before touching RAM.
    struct Run
    {
        size_t off;
        size_t len;
        const uint8_t *payload;
    };
    std::vector<Run> runs;
    runs.reserve(n_runs);
    uint64_t next_page = 0;
    for (uint32_t i = 0; i < n_runs; ++i) {
        uint32_t start = r.u32();
        uint32_t count = r.u32();
        if (count == 0)
            r.fail(strfmt("run %u is empty", i));
        if (start < next_page)
            r.fail(strfmt("run %u (page %u) overlaps or is unordered",
                          i, start));
        uint64_t end_page = static_cast<uint64_t>(start) + count;
        if (end_page > n_pages)
            r.fail(strfmt("run %u spans pages [%u, %llu) past RAM end "
                          "(%zu pages)",
                          i, start,
                          static_cast<unsigned long long>(end_page),
                          n_pages));
        size_t off = static_cast<size_t>(start) * kPageBytes;
        size_t end = std::min(static_cast<size_t>(end_page) * kPageBytes,
                              size_);
        runs.push_back(Run{off, end - off, r.raw(end - off)});
        next_page = end_page;
    }
    r.expectEnd();

    clear();
    for (const Run &run : runs)
        std::memcpy(data_ + run.off, run.payload, run.len);
}

} // namespace bifsim
