#include "mem/phys_mem.h"

#include <algorithm>
#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace bifsim {

namespace {

/** Reference zero page: memcmp against it beats any hand loop. */
alignas(64) const uint8_t kZeroPage[PhysMem::kPageBytes] = {};

bool
pageIsZero(const uint8_t *p, size_t len)
{
    if (len == PhysMem::kPageBytes)
        return std::memcmp(p, kZeroPage, PhysMem::kPageBytes) == 0;
    return std::memcmp(p, kZeroPage, std::min(len, sizeof kZeroPage)) ==
           0;
}

/** One validated run of non-zero pages from a MEM chunk. */
struct ParsedRun
{
    size_t off;
    size_t len;
    const uint8_t *payload;
};

/**
 * Parses and fully validates a MEM chunk (geometry header + run
 * table) against the expected RAM shape without touching any
 * destination byte — the shared parse half of parse-then-commit,
 * used by both restoreState and RamImage::sealFromSnapshot.
 */
std::vector<ParsedRun>
parseMemChunk(snapshot::ChunkReader &r, Addr expect_base,
              size_t expect_size)
{
    uint64_t base = r.u64();
    uint64_t size = r.u64();
    uint32_t page = r.u32();
    if (base != expect_base || size != expect_size)
        r.fail(strfmt("RAM geometry mismatch: image has base 0x%llx "
                      "size %llu, system has base 0x%llx size %zu",
                      static_cast<unsigned long long>(base),
                      static_cast<unsigned long long>(size),
                      static_cast<unsigned long long>(expect_base),
                      expect_size));
    if (page != PhysMem::kPageBytes)
        r.fail(strfmt("unsupported page size %u", page));

    const size_t n_pages =
        (expect_size + PhysMem::kPageBytes - 1) / PhysMem::kPageBytes;
    uint32_t n_runs = r.u32();
    // Every run carries an 8-byte header, so a count the payload could
    // not possibly back is hostile; reject before allocating anything.
    if (static_cast<uint64_t>(n_runs) * 8 > r.remaining())
        r.fail(strfmt("run count %u exceeds chunk size", n_runs));

    std::vector<ParsedRun> runs;
    runs.reserve(n_runs);
    uint64_t next_page = 0;
    for (uint32_t i = 0; i < n_runs; ++i) {
        uint32_t start = r.u32();
        uint32_t count = r.u32();
        if (count == 0)
            r.fail(strfmt("run %u is empty", i));
        if (start < next_page)
            r.fail(strfmt("run %u (page %u) overlaps or is unordered",
                          i, start));
        uint64_t end_page = static_cast<uint64_t>(start) + count;
        if (end_page > n_pages)
            r.fail(strfmt("run %u spans pages [%u, %llu) past RAM end "
                          "(%zu pages)",
                          i, start,
                          static_cast<unsigned long long>(end_page),
                          n_pages));
        size_t off = static_cast<size_t>(start) * PhysMem::kPageBytes;
        size_t end =
            std::min(static_cast<size_t>(end_page) * PhysMem::kPageBytes,
                     expect_size);
        runs.push_back(ParsedRun{off, end - off, r.raw(end - off)});
        next_page = end_page;
    }
    r.expectEnd();
    return runs;
}

} // namespace

// ------------------------------------------------------------ RamImage

RamImage::~RamImage()
{
#if defined(__linux__)
    if (fd_ >= 0)
        ::close(fd_);
#endif
}

std::shared_ptr<RamImage>
RamImage::sealFromSnapshot(const snapshot::Image &image)
{
#if defined(__linux__)
    namespace snap = snapshot;
    snap::ChunkReader hdr = image.chunk(snap::kTagMem);
    uint64_t base = hdr.u64();
    uint64_t size = hdr.u64();
    if (size == 0 || size > (1ull << 40))
        hdr.fail(strfmt("implausible RAM size %llu",
                        static_cast<unsigned long long>(size)));

    // Validate the complete run table before creating anything.
    snap::ChunkReader r = image.chunk(snap::kTagMem);
    std::vector<ParsedRun> runs =
        parseMemChunk(r, static_cast<Addr>(base),
                      static_cast<size_t>(size));

    int fd = static_cast<int>(
        ::memfd_create("bifsim-warm-ram", MFD_CLOEXEC | MFD_ALLOW_SEALING));
    if (fd < 0)
        return nullptr;
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
        ::close(fd);
        return nullptr;
    }
    void *p = ::mmap(nullptr, static_cast<size_t>(size),
                     PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (p == MAP_FAILED) {
        ::close(fd);
        return nullptr;
    }
    uint8_t *data = static_cast<uint8_t *>(p);
    for (const ParsedRun &run : runs)
        std::memcpy(data + run.off, run.payload, run.len);
    ::munmap(p, static_cast<size_t>(size));

    // Seal: the content is now immutable for the file's lifetime, so
    // every MAP_PRIVATE view is a faithful copy of the snapshot RAM.
    ::fcntl(fd, F_ADD_SEALS,
            F_SEAL_WRITE | F_SEAL_SHRINK | F_SEAL_GROW);

    snap::ChunkReader crc_r = image.chunk(snap::kTagMem);
    size_t mem_len = crc_r.remaining();
    return std::shared_ptr<RamImage>(
        new RamImage(static_cast<Addr>(base), static_cast<size_t>(size),
                     fd, image.chunkCrc(snap::kTagMem), mem_len));
#else
    (void)image;
    return nullptr;
#endif
}

// ------------------------------------------------------------- PhysMem

PhysMem::PhysMem(Addr base, size_t size,
                 std::shared_ptr<const RamImage> image)
    : base_(base), size_(size)
{
    const size_t alloc = size_ ? size_ : 1;
#if defined(__linux__)
    if (image && image->base() == base_ && image->size() == size_ &&
        size_ != 0) {
        void *p = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE, image->fd(), 0);
        if (p != MAP_FAILED) {
            data_ = static_cast<uint8_t *>(p);
            mmapped_ = true;
            cowMapped_ = true;
            image_ = std::move(image);
            return;
        }
    }
    void *p = ::mmap(nullptr, alloc, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        data_ = static_cast<uint8_t *>(p);
        mmapped_ = true;
        return;
    }
#else
    (void)image;
#endif
    data_ = static_cast<uint8_t *>(std::calloc(alloc, 1));
    if (!data_)
        throw std::bad_alloc();
}

PhysMem::~PhysMem()
{
#if defined(__linux__)
    if (mmapped_) {
        ::munmap(data_, size_ ? size_ : 1);
        return;
    }
#endif
    std::free(data_);
}

void
PhysMem::clear()
{
#if defined(__linux__)
    if (cowMapped_) {
        // MADV_DONTNEED on a private file mapping would repopulate
        // from the *file*, not with zeroes; replace the view with a
        // fresh anonymous mapping instead.  resetToImage() re-attaches
        // the image later if wanted.
        void *p = ::mmap(data_, size_, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);
        if (p != MAP_FAILED) {
            cowMapped_ = false;
            return;
        }
        // MAP_FIXED failed (shouldn't happen); fall through to memset.
    }
    // Drop the materialised pages instead of writing zeroes: untouched
    // pages stay unmapped and re-fault as zero on next access, so the
    // cost tracks the guest's working set, not the RAM size.
    if (!cowMapped_ && mmapped_ && size_ &&
        ::madvise(data_, size_, MADV_DONTNEED) == 0)
        return;
#endif
    std::memset(data_, 0, size_);
}

bool
PhysMem::resetToImage()
{
#if defined(__linux__)
    if (image_ && mmapped_ && size_) {
        // Remapping the sealed file over the same range drops every
        // private (dirtied) page and re-establishes the shared view:
        // O(dirtied pages) page-table work, no RAM copy.
        void *p = ::mmap(data_, size_, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_FIXED, image_->fd(), 0);
        if (p != MAP_FAILED) {
            cowMapped_ = true;
            return true;
        }
    }
#endif
    clear();
    return false;
}

void
PhysMem::saveState(snapshot::ChunkWriter &w) const
{
    const size_t n_pages =
        (size_ + kPageBytes - 1) / kPageBytes;

    w.u64(base_);
    w.u64(size_);
    w.u32(static_cast<uint32_t>(kPageBytes));

    // First pass: build the run table (start page + page count of each
    // maximal stretch of non-zero pages).
    struct Run
    {
        uint32_t start;
        uint32_t count;
    };
    std::vector<Run> runs;
    for (size_t p = 0; p < n_pages; ++p) {
        size_t off = p * kPageBytes;
        size_t len = std::min(kPageBytes, size_ - off);
        if (pageIsZero(data_ + off, len))
            continue;
        if (!runs.empty() &&
            runs.back().start + runs.back().count == p) {
            ++runs.back().count;
        } else {
            runs.push_back(Run{static_cast<uint32_t>(p), 1});
        }
    }

    w.u32(static_cast<uint32_t>(runs.size()));
    for (const Run &r : runs) {
        size_t off = static_cast<size_t>(r.start) * kPageBytes;
        size_t end = std::min(off + static_cast<size_t>(r.count) *
                                        kPageBytes,
                              size_);
        w.u32(r.start);
        w.u32(r.count);
        w.bytes(data_ + off, end - off);
    }
}

void
PhysMem::restoreState(snapshot::ChunkReader &r)
{
    // Parse-then-commit: validate every run header and claim its
    // payload bytes (bounds-checked by raw()) before touching RAM.
    std::vector<ParsedRun> runs = parseMemChunk(r, base_, size_);

    clear();
    for (const ParsedRun &run : runs)
        std::memcpy(data_ + run.off, run.payload, run.len);
}

} // namespace bifsim
