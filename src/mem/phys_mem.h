#ifndef BIFSIM_MEM_PHYS_MEM_H
#define BIFSIM_MEM_PHYS_MEM_H

/**
 * @file
 * Guest physical DRAM, shared between the simulated CPU and GPU
 * exactly as on the modelled SoC (unified memory).
 */

#include <cstdint>
#include <cstring>
#include <memory>

#include "mem/device.h"
#include "snapshot/snapshot.h"

namespace bifsim {

/**
 * A sealed, read-only RAM image backing many PhysMem instances at once
 * (DESIGN.md §5j).
 *
 * Built once from the MEM chunk of a validated snapshot image: the
 * sparse run table is expanded into an anonymous memfd, which is then
 * sealed (F_SEAL_WRITE | F_SEAL_SHRINK | F_SEAL_GROW) so no path —
 * not even this process — can mutate the bytes afterwards.  Every
 * fleet session maps the file MAP_PRIVATE: clean pages are shared
 * through the page cache across all sessions, and only pages a
 * session actually dirties fault in a private copy.  `memCrc`/`memLen`
 * identify the exact MEM chunk the image was sealed from, so a
 * restore can prove the fast path applies before skipping the chunk.
 *
 * Threading: immutable after sealFromSnapshot returns; share freely.
 */
class RamImage
{
  public:
    ~RamImage();

    RamImage(const RamImage &) = delete;
    RamImage &operator=(const RamImage &) = delete;

    /**
     * Expands @p image's MEM chunk into a sealed memfd.  Returns
     * nullptr when the platform cannot provide sealed shared memory
     * (non-Linux hosts) — callers fall back to the ordinary sparse
     * restore path.  Throws snapshot::SnapshotError on a malformed
     * MEM chunk.
     */
    static std::shared_ptr<RamImage>
    sealFromSnapshot(const snapshot::Image &image);

    Addr base() const { return base_; }
    size_t size() const { return size_; }
    int fd() const { return fd_; }

    /** CRC-32 of the MEM chunk payload this image was sealed from. */
    uint32_t memCrc() const { return memCrc_; }

    /** Length of that MEM chunk payload. */
    size_t memLen() const { return memLen_; }

  private:
    RamImage(Addr base, size_t size, int fd, uint32_t mem_crc,
             size_t mem_len)
        : base_(base), size_(size), fd_(fd), memCrc_(mem_crc),
          memLen_(mem_len)
    {
    }

    Addr base_;
    size_t size_;
    int fd_ = -1;
    uint32_t memCrc_;
    size_t memLen_;
};

/**
 * A contiguous block of guest physical memory.
 *
 * Backed by host memory; both the CPU model and the GPU model read and
 * write through this object, giving the fully shared CPU/GPU memory
 * system of the Bifrost platform.
 *
 * On Linux the backing store is an anonymous mmap: untouched guest
 * pages are never materialised, and clear() drops the mapped pages
 * with madvise(MADV_DONTNEED) instead of writing zeroes, so
 * constructing, cold-booting and snapshot-restoring a machine cost
 * O(pages actually used), not O(configured RAM).
 *
 * Fleet mode (DESIGN.md §5j): constructed over a RamImage, the backing
 * becomes a MAP_PRIVATE mapping of the sealed image file.  All
 * sessions spawned from one warm-boot image then share every clean
 * RAM page, and resetToImage() recycles a dirty session back to the
 * image content by remapping — O(dirtied pages), no copy of RAM.
 */
class PhysMem
{
  public:
    /** Creates @p size bytes of RAM based at physical address @p base.
     *  When @p image is non-null and matches the geometry, the RAM is
     *  a copy-on-write view of the sealed image content; otherwise an
     *  anonymous zero-filled mapping (image content then arrives via
     *  restoreState). */
    PhysMem(Addr base, size_t size,
            std::shared_ptr<const RamImage> image = nullptr);
    ~PhysMem();

    PhysMem(const PhysMem &) = delete;
    PhysMem &operator=(const PhysMem &) = delete;

    /** Base physical address. */
    Addr base() const { return base_; }

    /** Size in bytes. */
    size_t size() const { return size_; }

    /** Returns true if [addr, addr+len) lies entirely inside this RAM. */
    bool
    contains(Addr addr, size_t len) const
    {
        return addr >= base_ && len <= size_ &&
               addr - base_ <= size_ - len;
    }

    /** Raw host pointer to guest physical address @p addr (must be
     *  in range). */
    uint8_t *hostPtr(Addr addr) { return data_ + (addr - base_); }

    /** Raw const host pointer to guest physical address @p addr. */
    const uint8_t *
    hostPtr(Addr addr) const
    {
        return data_ + (addr - base_);
    }

    /** Loads a little-endian scalar of type T at @p addr. */
    template <typename T>
    T
    read(Addr addr) const
    {
        T v;
        std::memcpy(&v, hostPtr(addr), sizeof(T));
        return v;
    }

    /** Stores a little-endian scalar of type T at @p addr. */
    template <typename T>
    void
    write(Addr addr, T value)
    {
        std::memcpy(hostPtr(addr), &value, sizeof(T));
    }

    /** Copies a block out of guest memory. */
    void
    readBlock(Addr addr, void *dst, size_t len) const
    {
        std::memcpy(dst, hostPtr(addr), len);
    }

    /** Copies a block into guest memory. */
    void
    writeBlock(Addr addr, const void *src, size_t len)
    {
        std::memcpy(hostPtr(addr), src, len);
    }

    /** Fills a block of guest memory with @p byte. */
    void
    fill(Addr addr, uint8_t byte, size_t len)
    {
        std::memset(hostPtr(addr), byte, len);
    }

    /** Zeroes all of RAM (cold boot / restore baseline).  In CoW mode
     *  the file backing is replaced by a fresh anonymous mapping; a
     *  later resetToImage() re-attaches the image. */
    void clear();

    /** True when this RAM is a copy-on-write view of a RamImage. */
    bool hasImage() const { return image_ != nullptr; }

    /** The backing image, or nullptr. */
    const RamImage *image() const { return image_.get(); }

    /**
     * Resets RAM content to the backing image: private (dirtied) pages
     * are dropped and the CoW mapping is re-established, so the cost
     * tracks the session's dirtied working set.  Falls back to clear()
     * when there is no backing image (callers must then restore RAM
     * by other means).  @return true when image content was restored.
     */
    bool resetToImage();

    /** Snapshot page granule. */
    static constexpr size_t kPageBytes = 4096;

    /**
     * Serialises RAM into @p w using a sparse run-length encoding:
     * all-zero pages are elided and consecutive non-zero pages coalesce
     * into runs, so a mostly-empty guest image stays small.
     */
    void saveState(snapshot::ChunkWriter &w) const;

    /**
     * Restores RAM from @p r.  Validates the complete run table
     * (geometry match, ordering, bounds) before writing any byte, then
     * zero-fills and applies the runs.
     */
    void restoreState(snapshot::ChunkReader &r);

  private:
    Addr base_;
    size_t size_;
    uint8_t *data_ = nullptr;
    bool mmapped_ = false;
    bool cowMapped_ = false;   ///< Current mapping is MAP_PRIVATE
                               ///< over image_'s fd.
    std::shared_ptr<const RamImage> image_;
};

} // namespace bifsim

#endif // BIFSIM_MEM_PHYS_MEM_H
