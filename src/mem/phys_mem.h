#ifndef BIFSIM_MEM_PHYS_MEM_H
#define BIFSIM_MEM_PHYS_MEM_H

/**
 * @file
 * Guest physical DRAM, shared between the simulated CPU and GPU
 * exactly as on the modelled SoC (unified memory).
 */

#include <cstdint>
#include <cstring>

#include "mem/device.h"
#include "snapshot/snapshot.h"

namespace bifsim {

/**
 * A contiguous block of guest physical memory.
 *
 * Backed by host memory; both the CPU model and the GPU model read and
 * write through this object, giving the fully shared CPU/GPU memory
 * system of the Bifrost platform.
 *
 * On Linux the backing store is an anonymous mmap: untouched guest
 * pages are never materialised, and clear() drops the mapped pages
 * with madvise(MADV_DONTNEED) instead of writing zeroes, so
 * constructing, cold-booting and snapshot-restoring a machine cost
 * O(pages actually used), not O(configured RAM).
 */
class PhysMem
{
  public:
    /** Creates @p size bytes of RAM based at physical address @p base. */
    PhysMem(Addr base, size_t size);
    ~PhysMem();

    PhysMem(const PhysMem &) = delete;
    PhysMem &operator=(const PhysMem &) = delete;

    /** Base physical address. */
    Addr base() const { return base_; }

    /** Size in bytes. */
    size_t size() const { return size_; }

    /** Returns true if [addr, addr+len) lies entirely inside this RAM. */
    bool
    contains(Addr addr, size_t len) const
    {
        return addr >= base_ && len <= size_ &&
               addr - base_ <= size_ - len;
    }

    /** Raw host pointer to guest physical address @p addr (must be
     *  in range). */
    uint8_t *hostPtr(Addr addr) { return data_ + (addr - base_); }

    /** Raw const host pointer to guest physical address @p addr. */
    const uint8_t *
    hostPtr(Addr addr) const
    {
        return data_ + (addr - base_);
    }

    /** Loads a little-endian scalar of type T at @p addr. */
    template <typename T>
    T
    read(Addr addr) const
    {
        T v;
        std::memcpy(&v, hostPtr(addr), sizeof(T));
        return v;
    }

    /** Stores a little-endian scalar of type T at @p addr. */
    template <typename T>
    void
    write(Addr addr, T value)
    {
        std::memcpy(hostPtr(addr), &value, sizeof(T));
    }

    /** Copies a block out of guest memory. */
    void
    readBlock(Addr addr, void *dst, size_t len) const
    {
        std::memcpy(dst, hostPtr(addr), len);
    }

    /** Copies a block into guest memory. */
    void
    writeBlock(Addr addr, const void *src, size_t len)
    {
        std::memcpy(hostPtr(addr), src, len);
    }

    /** Fills a block of guest memory with @p byte. */
    void
    fill(Addr addr, uint8_t byte, size_t len)
    {
        std::memset(hostPtr(addr), byte, len);
    }

    /** Zeroes all of RAM (cold boot / restore baseline). */
    void clear();

    /** Snapshot page granule. */
    static constexpr size_t kPageBytes = 4096;

    /**
     * Serialises RAM into @p w using a sparse run-length encoding:
     * all-zero pages are elided and consecutive non-zero pages coalesce
     * into runs, so a mostly-empty guest image stays small.
     */
    void saveState(snapshot::ChunkWriter &w) const;

    /**
     * Restores RAM from @p r.  Validates the complete run table
     * (geometry match, ordering, bounds) before writing any byte, then
     * zero-fills and applies the runs.
     */
    void restoreState(snapshot::ChunkReader &r);

  private:
    Addr base_;
    size_t size_;
    uint8_t *data_ = nullptr;
    bool mmapped_ = false;
};

} // namespace bifsim

#endif // BIFSIM_MEM_PHYS_MEM_H
