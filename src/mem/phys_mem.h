#ifndef BIFSIM_MEM_PHYS_MEM_H
#define BIFSIM_MEM_PHYS_MEM_H

/**
 * @file
 * Guest physical DRAM, shared between the simulated CPU and GPU
 * exactly as on the modelled SoC (unified memory).
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include "mem/device.h"

namespace bifsim {

/**
 * A contiguous block of guest physical memory.
 *
 * Backed by host memory; both the CPU model and the GPU model read and
 * write through this object, giving the fully shared CPU/GPU memory
 * system of the Bifrost platform.
 */
class PhysMem
{
  public:
    /** Creates @p size bytes of RAM based at physical address @p base. */
    PhysMem(Addr base, size_t size) : base_(base), data_(size, 0) {}

    /** Base physical address. */
    Addr base() const { return base_; }

    /** Size in bytes. */
    size_t size() const { return data_.size(); }

    /** Returns true if [addr, addr+len) lies entirely inside this RAM. */
    bool
    contains(Addr addr, size_t len) const
    {
        return addr >= base_ && len <= data_.size() &&
               addr - base_ <= data_.size() - len;
    }

    /** Raw host pointer to guest physical address @p addr (must be
     *  in range). */
    uint8_t *hostPtr(Addr addr) { return data_.data() + (addr - base_); }

    /** Raw const host pointer to guest physical address @p addr. */
    const uint8_t *
    hostPtr(Addr addr) const
    {
        return data_.data() + (addr - base_);
    }

    /** Loads a little-endian scalar of type T at @p addr. */
    template <typename T>
    T
    read(Addr addr) const
    {
        T v;
        std::memcpy(&v, hostPtr(addr), sizeof(T));
        return v;
    }

    /** Stores a little-endian scalar of type T at @p addr. */
    template <typename T>
    void
    write(Addr addr, T value)
    {
        std::memcpy(hostPtr(addr), &value, sizeof(T));
    }

    /** Copies a block out of guest memory. */
    void
    readBlock(Addr addr, void *dst, size_t len) const
    {
        std::memcpy(dst, hostPtr(addr), len);
    }

    /** Copies a block into guest memory. */
    void
    writeBlock(Addr addr, const void *src, size_t len)
    {
        std::memcpy(hostPtr(addr), src, len);
    }

    /** Fills a block of guest memory with @p byte. */
    void
    fill(Addr addr, uint8_t byte, size_t len)
    {
        std::memset(hostPtr(addr), byte, len);
    }

  private:
    Addr base_;
    std::vector<uint8_t> data_;
};

} // namespace bifsim

#endif // BIFSIM_MEM_PHYS_MEM_H
