#ifndef BIFSIM_MEM_BUS_H
#define BIFSIM_MEM_BUS_H

/**
 * @file
 * The system bus routing physical accesses to RAM and MMIO devices.
 */

#include <cstdint>
#include <vector>

#include "mem/device.h"
#include "mem/phys_mem.h"

namespace bifsim {

/** Outcome of a bus access. */
enum class BusResult
{
    Ok,          ///< Access completed.
    Unmapped,    ///< No RAM or device at this address.
    BadSize,     ///< Device access with size other than 4 bytes.
    Misaligned,  ///< Device access not 4-byte aligned.
};

/**
 * Routes physical memory accesses to the RAM block or to memory-mapped
 * devices.  Devices see only naturally aligned 32-bit accesses; RAM
 * accepts 1/2/4/8-byte accesses.
 *
 * The bus itself holds no locks: RAM accesses may proceed concurrently
 * from the CPU thread and GPU worker threads (the guest is responsible
 * for its own synchronisation, as on real hardware), and each device
 * serialises its own register file internally.
 */
class Bus
{
  public:
    Bus() = default;

    /** Attaches the (single) RAM block.  Not owned. */
    void attachMemory(PhysMem *mem) { mem_ = mem; }

    /** Maps @p dev at [base, base+size).  Not owned. */
    void
    attachDevice(Addr base, Addr size, Device *dev)
    {
        mappings_.push_back({base, size, dev});
    }

    /** The attached RAM block (may be null before wiring). */
    PhysMem *memory() const { return mem_; }

    /**
     * Reads @p size bytes (1/2/4/8) at @p addr into @p out
     * (zero-extended).
     */
    BusResult read(Addr addr, unsigned size, uint64_t &out);

    /** Writes the low @p size bytes (1/2/4/8) of @p value at @p addr. */
    BusResult write(Addr addr, unsigned size, uint64_t value);

    /** Looks up the device mapped at @p addr, or null. */
    Device *deviceAt(Addr addr, Addr &base_out) const;

  private:
    struct Mapping
    {
        Addr base;
        Addr size;
        Device *dev;
    };

    PhysMem *mem_ = nullptr;
    std::vector<Mapping> mappings_;
};

} // namespace bifsim

#endif // BIFSIM_MEM_BUS_H
