#ifndef BIFSIM_MEM_DEVICE_H
#define BIFSIM_MEM_DEVICE_H

/**
 * @file
 * The memory-mapped device interface implemented by all SoC peripherals
 * (UART, timer, interrupt controller, GPU).
 */

#include <cstdint>
#include <string>

namespace bifsim {

/** Physical / bus address type.  The guest is 32-bit but we keep 64 bits
 *  of headroom so host-side bookkeeping never truncates. */
using Addr = uint64_t;

/**
 * A device with a 32-bit register file mapped into the physical address
 * space.  All registers are 32 bits wide; the bus only routes naturally
 * aligned 4-byte accesses to devices.
 */
class Device
{
  public:
    virtual ~Device() = default;

    /** Reads the register at byte @p offset from the device base. */
    virtual uint32_t mmioRead(Addr offset) = 0;

    /** Writes the register at byte @p offset from the device base. */
    virtual void mmioWrite(Addr offset, uint32_t value) = 0;

    /**
     * Returns the device to its power-on state, dropping any latched
     * output, pending interrupt lines and captured data.  Used by cold
     * boot and by snapshot restore so restoring over a dirty system
     * cannot leak prior state.
     */
    virtual void reset() {}

    /** Human-readable device name for diagnostics. */
    virtual std::string name() const = 0;
};

} // namespace bifsim

#endif // BIFSIM_MEM_DEVICE_H
